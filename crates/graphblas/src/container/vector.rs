//! The GraphBLAS vector containers: dense-backed [`Vector`] and the
//! truly sparse [`SparseVector`].
//!
//! A [`Vector`] is logically a map from `0..len` to `T` where absent entries
//! mean the ambient semiring's additive identity. Storage is a dense value
//! array plus an optional **pattern**: a sorted list of stored indices.
//!
//! * HPCG's numeric vectors (`x`, `b`, `r`, …) are dense — no pattern.
//! * The RBGS color masks are *sparse boolean vectors*: only the rows of one
//!   color are stored. Masked operations iterate the pattern, which is what
//!   makes the per-color cost proportional to the color size, and what the
//!   `structural` descriptor exploits (it never touches `values`).
//!
//! # `SparseVector`: index+value storage for graph frontiers
//!
//! A [`Vector`] with a pattern still allocates `Θ(len)` values, so a BFS
//! frontier of 10 vertices in a 10-million-vertex graph pays `Θ(n)` per
//! step regardless of frontier size. [`SparseVector`] fixes that: it
//! stores only `(index, value)` pairs plus an explicit **fill** value that
//! every unstored position logically holds — `0.0` for arithmetic/boolean
//! frontiers, `+∞` for `MinPlus` distance frontiers. Two representations:
//!
//! * **Compressed** — sorted index array + parallel value array, `Θ(nvals)`
//!   storage. This is what the direction-optimizing `mxv` kernels key on:
//!   a compressed frontier below the density threshold runs in *push* mode
//!   (scatter along the CSC columns of the stored entries only).
//! * **Promoted** — a dense value buffer. Construction auto-promotes when
//!   stored density exceeds [`SparseVector::DENSE_PROMOTION_THRESHOLD`]
//!   (the dense-threshold promotion rule): past that point the index
//!   array costs more than it saves, and the *pull* (CSR row sweep)
//!   kernel is the faster traversal direction anyway.
//!
//! The logical value of `SparseVector` — densify with `fill`, then apply
//! the operation — is the semantics every sparse kernel is pinned against,
//! which is what keeps sparse-frontier algorithms bit-identical to their
//! dense counterparts.

use crate::error::{GrbError, Result};
use crate::ops::scalar::Scalar;

/// A dense-or-sparse vector over domain `T`.
///
/// See the [module docs](self) for the storage model.
#[derive(Clone, Debug, PartialEq)]
pub struct Vector<T> {
    values: Vec<T>,
    /// Sorted, unique indices of stored entries; `None` means all stored.
    pattern: Option<Vec<u32>>,
}

impl<T: Scalar> Vector<T> {
    /// A dense vector of `n` domain zeros.
    pub fn zeros(n: usize) -> Self {
        Vector {
            values: vec![T::ZERO; n],
            pattern: None,
        }
    }

    /// A dense vector with every entry equal to `value`.
    pub fn filled(n: usize, value: T) -> Self {
        Vector {
            values: vec![value; n],
            pattern: None,
        }
    }

    /// Wraps an existing dense buffer.
    pub fn from_dense(values: Vec<T>) -> Self {
        Vector {
            values,
            pattern: None,
        }
    }

    /// A sparse vector of logical length `n` whose stored entries are
    /// `indices`, all set to `value`. Indices must be strictly increasing.
    ///
    /// This is the constructor for RBGS color masks: `value = true`.
    pub fn sparse_filled(n: usize, indices: Vec<u32>, value: T) -> Result<Self> {
        validate_pattern(n, &indices)?;
        let mut values = vec![T::ZERO; n];
        for &i in &indices {
            values[i as usize] = value;
        }
        Ok(Vector {
            values,
            pattern: Some(indices),
        })
    }

    /// A sparse vector from `(index, value)` entries with strictly
    /// increasing indices.
    pub fn from_entries(n: usize, entries: &[(u32, T)]) -> Result<Self> {
        let indices: Vec<u32> = entries.iter().map(|&(i, _)| i).collect();
        validate_pattern(n, &indices)?;
        let mut values = vec![T::ZERO; n];
        for &(i, v) in entries {
            values[i as usize] = v;
        }
        Ok(Vector {
            values,
            pattern: Some(indices),
        })
    }

    /// Logical length of the vector.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of stored entries (`len()` when dense).
    pub fn nnz(&self) -> usize {
        match &self.pattern {
            None => self.values.len(),
            Some(p) => p.len(),
        }
    }

    /// Whether every entry is stored.
    pub fn is_dense(&self) -> bool {
        self.pattern.is_none()
    }

    /// The stored-index pattern: `None` for dense vectors.
    #[inline(always)]
    pub fn pattern(&self) -> Option<&[u32]> {
        self.pattern.as_deref()
    }

    /// Dense view of the value buffer. Entries outside the pattern hold the
    /// domain zero.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }

    /// Mutable dense view of the value buffer.
    ///
    /// Writing through this view does **not** extend the pattern; use
    /// [`Vector::densify`] first when turning a sparse vector dense.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// The value at `i`, or `None` if `i` is not stored.
    pub fn get(&self, i: usize) -> Option<T> {
        if i >= self.values.len() {
            return None;
        }
        match &self.pattern {
            None => Some(self.values[i]),
            Some(p) => p.binary_search(&(i as u32)).ok().map(|_| self.values[i]),
        }
    }

    /// The value at `i`, treating unstored entries as the domain zero.
    #[inline(always)]
    pub fn get_or_zero(&self, i: usize) -> T {
        self.values.get(i).copied().unwrap_or(T::ZERO)
    }

    /// Iterates `(index, value)` over stored entries in increasing index order.
    pub fn iter_stored(&self) -> StoredIter<'_, T> {
        StoredIter {
            vector: self,
            cursor: 0,
        }
    }

    /// Sets every stored entry to `value` (dense: every entry).
    pub fn fill(&mut self, value: T) {
        match &self.pattern {
            None => self.values.iter_mut().for_each(|v| *v = value),
            Some(p) => {
                for &i in p {
                    self.values[i as usize] = value;
                }
            }
        }
    }

    /// Resets to a dense all-zero vector of the same length.
    pub fn clear(&mut self) {
        self.values.iter_mut().for_each(|v| *v = T::ZERO);
        self.pattern = None;
    }

    /// Drops the pattern, making all `len()` entries stored (unstored
    /// positions become explicit zeros).
    pub fn densify(&mut self) {
        self.pattern = None;
    }

    /// Euclidean-style structural check used in tests: do the stored
    /// patterns match?
    pub fn same_pattern(&self, other: &Vector<T>) -> bool {
        self.len() == other.len() && self.pattern == other.pattern
    }
}

impl<T> AsRef<[T]> for Vector<T> {
    fn as_ref(&self) -> &[T] {
        &self.values
    }
}

impl<T> AsMut<[T]> for Vector<T> {
    /// Dense mutable view (see [`Vector::as_mut_slice`] for pattern caveats).
    fn as_mut(&mut self) -> &mut [T] {
        &mut self.values
    }
}

/// Iterator over stored `(index, value)` pairs. See [`Vector::iter_stored`].
pub struct StoredIter<'a, T> {
    vector: &'a Vector<T>,
    cursor: usize,
}

impl<T: Scalar> Iterator for StoredIter<'_, T> {
    type Item = (usize, T);

    fn next(&mut self) -> Option<(usize, T)> {
        match self.vector.pattern() {
            None => {
                if self.cursor < self.vector.len() {
                    let i = self.cursor;
                    self.cursor += 1;
                    Some((i, self.vector.values[i]))
                } else {
                    None
                }
            }
            Some(p) => {
                if self.cursor < p.len() {
                    let i = p[self.cursor] as usize;
                    self.cursor += 1;
                    Some((i, self.vector.values[i]))
                } else {
                    None
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vector.nnz().saturating_sub(self.cursor);
        (rem, Some(rem))
    }
}

/// Storage of a [`SparseVector`]: compressed index+value pairs, or a
/// promoted dense buffer once the entries are no longer sparse enough to
/// be worth indexing.
#[derive(Clone, Debug, PartialEq)]
enum SparseRepr<T> {
    /// Strictly increasing stored indices plus their values.
    Compressed { indices: Vec<u32>, values: Vec<T> },
    /// Every position stored (unset positions hold the fill value).
    Promoted(Vec<T>),
}

/// A truly sparse vector: `Θ(nvals)` storage of `(index, value)` entries,
/// every unstored position logically holding an explicit **fill** value.
///
/// This is the frontier container of the large-graph subsystem — see the
/// [module docs](self) for the storage model, the promotion rule, and how
/// the push/pull `mxv` kernels key on the representation. Unlike
/// [`Vector`], whose "absent" entries are pinned to the domain zero,
/// `SparseVector` carries its fill explicitly so `MinPlus` frontiers can
/// default to `+∞` without storing it `n` times.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseVector<T> {
    len: usize,
    fill: T,
    repr: SparseRepr<T>,
}

impl<T: Scalar> SparseVector<T> {
    /// Stored-entry density above which construction promotes to the
    /// dense representation: past half full, the index array costs more
    /// than it saves and pull-mode traversal wins anyway.
    pub const DENSE_PROMOTION_THRESHOLD: f64 = 0.5;

    /// An empty sparse vector of logical length `n`: every position reads
    /// as `fill`.
    pub fn empty(n: usize, fill: T) -> Self {
        SparseVector {
            len: n,
            fill,
            repr: SparseRepr::Compressed {
                indices: Vec::new(),
                values: Vec::new(),
            },
        }
    }

    /// A sparse vector from `(index, value)` entries with strictly
    /// increasing indices; unlisted positions read as `fill`.
    ///
    /// Auto-promotes to the dense representation when the entry density
    /// exceeds [`Self::DENSE_PROMOTION_THRESHOLD`].
    pub fn from_entries(n: usize, fill: T, entries: &[(u32, T)]) -> Result<Self> {
        let indices: Vec<u32> = entries.iter().map(|&(i, _)| i).collect();
        validate_pattern(n, &indices)?;
        let values: Vec<T> = entries.iter().map(|&(_, v)| v).collect();
        let mut out = SparseVector {
            len: n,
            fill,
            repr: SparseRepr::Compressed { indices, values },
        };
        out.maybe_promote();
        Ok(out)
    }

    /// A promoted (dense-representation) sparse vector holding `values`.
    /// The fill only matters for conversions back to compressed form.
    pub fn promoted(values: Vec<T>, fill: T) -> Self {
        SparseVector {
            len: values.len(),
            fill,
            repr: SparseRepr::Promoted(values),
        }
    }

    /// Compresses a dense [`Vector`]: entries equal to `fill` are dropped,
    /// the rest stored. Auto-promotes per the density rule, so a mostly
    /// non-fill input round-trips to the dense representation.
    pub fn from_dense_vector(v: &Vector<T>, fill: T) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &x) in v.as_slice().iter().enumerate() {
            if x != fill {
                indices.push(i as u32);
                values.push(x);
            }
        }
        let mut out = SparseVector {
            len: v.len(),
            fill,
            repr: SparseRepr::Compressed { indices, values },
        };
        out.maybe_promote();
        out
    }

    /// Logical length.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored entries (`len()` once promoted).
    pub fn nvals(&self) -> usize {
        match &self.repr {
            SparseRepr::Compressed { indices, .. } => indices.len(),
            SparseRepr::Promoted(_) => self.len,
        }
    }

    /// Stored-entry density `nvals / len` (`1.0` once promoted; `0.0` for
    /// the empty-length vector).
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.nvals() as f64 / self.len as f64
        }
    }

    /// The value unstored positions logically hold.
    #[inline(always)]
    pub fn fill(&self) -> T {
        self.fill
    }

    /// Whether this vector is in the promoted (dense) representation.
    pub fn is_promoted(&self) -> bool {
        matches!(self.repr, SparseRepr::Promoted(_))
    }

    /// The stored indices, or `None` once promoted.
    pub fn indices(&self) -> Option<&[u32]> {
        match &self.repr {
            SparseRepr::Compressed { indices, .. } => Some(indices),
            SparseRepr::Promoted(_) => None,
        }
    }

    /// The logical value at `i` (the fill when unstored). Out-of-range
    /// reads are a caller bug and panic like slice indexing.
    pub fn get(&self, i: usize) -> T {
        assert!(
            i < self.len,
            "index {i} out of range for length {}",
            self.len
        );
        match &self.repr {
            SparseRepr::Promoted(values) => values[i],
            SparseRepr::Compressed { indices, values } => indices
                .binary_search(&(i as u32))
                .ok()
                .map_or(self.fill, |k| values[k]),
        }
    }

    /// Iterates stored `(index, value)` pairs in increasing index order.
    /// Promoted vectors yield every position (including fill values).
    pub fn iter_stored(&self) -> SparseStoredIter<'_, T> {
        SparseStoredIter {
            vector: self,
            cursor: 0,
        }
    }

    /// Materializes the logical contents as a dense [`Vector`].
    pub fn to_dense(&self) -> Vector<T> {
        match &self.repr {
            SparseRepr::Promoted(values) => Vector::from_dense(values.clone()),
            SparseRepr::Compressed { indices, values } => {
                let mut out = vec![self.fill; self.len];
                for (&i, &v) in indices.iter().zip(values) {
                    out[i as usize] = v;
                }
                Vector::from_dense(out)
            }
        }
    }

    /// Forces the dense representation (a no-op once promoted).
    pub fn promote(&mut self) {
        if let SparseRepr::Compressed { indices, values } = &self.repr {
            let mut dense = vec![self.fill; self.len];
            for (&i, &v) in indices.iter().zip(values) {
                dense[i as usize] = v;
            }
            self.repr = SparseRepr::Promoted(dense);
        }
    }

    /// Applies the promotion rule: promotes when stored density exceeds
    /// [`Self::DENSE_PROMOTION_THRESHOLD`].
    pub fn maybe_promote(&mut self) {
        if !self.is_promoted() && self.density() > Self::DENSE_PROMOTION_THRESHOLD {
            self.promote();
        }
    }
}

/// Iterator over a [`SparseVector`]'s stored `(index, value)` pairs. See
/// [`SparseVector::iter_stored`].
pub struct SparseStoredIter<'a, T> {
    vector: &'a SparseVector<T>,
    cursor: usize,
}

impl<T: Scalar> Iterator for SparseStoredIter<'_, T> {
    type Item = (usize, T);

    fn next(&mut self) -> Option<(usize, T)> {
        match &self.vector.repr {
            SparseRepr::Promoted(values) => {
                if self.cursor < values.len() {
                    let i = self.cursor;
                    self.cursor += 1;
                    Some((i, values[i]))
                } else {
                    None
                }
            }
            SparseRepr::Compressed { indices, values } => {
                if self.cursor < indices.len() {
                    let k = self.cursor;
                    self.cursor += 1;
                    Some((indices[k] as usize, values[k]))
                } else {
                    None
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vector.nvals().saturating_sub(self.cursor);
        (rem, Some(rem))
    }
}

fn validate_pattern(n: usize, indices: &[u32]) -> Result<()> {
    for (k, &i) in indices.iter().enumerate() {
        if i as usize >= n {
            return Err(GrbError::IndexOutOfBounds {
                index: i as usize,
                len: n,
            });
        }
        if k > 0 && indices[k - 1] >= i {
            return Err(GrbError::InvalidInput(format!(
                "pattern indices must be strictly increasing, got {} then {}",
                indices[k - 1],
                i
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_construction() {
        let v = Vector::<f64>::zeros(4);
        assert_eq!(v.len(), 4);
        assert_eq!(v.nnz(), 4);
        assert!(v.is_dense());
        assert_eq!(v.as_slice(), &[0.0; 4]);

        let w = Vector::filled(3, 2.5);
        assert_eq!(w.as_slice(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn sparse_construction_and_access() {
        let m = Vector::<bool>::sparse_filled(6, vec![1, 3, 4], true).unwrap();
        assert_eq!(m.len(), 6);
        assert_eq!(m.nnz(), 3);
        assert!(!m.is_dense());
        assert_eq!(m.get(1), Some(true));
        assert_eq!(m.get(0), None, "unstored entries are absent");
        assert_eq!(m.get(99), None, "out of range is absent");
        assert!(!m.get_or_zero(0));
        assert_eq!(m.pattern(), Some(&[1u32, 3, 4][..]));
    }

    #[test]
    fn sparse_rejects_bad_patterns() {
        assert!(matches!(
            Vector::<f64>::sparse_filled(4, vec![0, 5], 1.0),
            Err(GrbError::IndexOutOfBounds { index: 5, len: 4 })
        ));
        assert!(Vector::<f64>::sparse_filled(4, vec![2, 2], 1.0).is_err());
        assert!(Vector::<f64>::sparse_filled(4, vec![3, 1], 1.0).is_err());
    }

    #[test]
    fn from_entries_places_values() {
        let v = Vector::<f64>::from_entries(5, &[(0, 1.5), (4, -2.0)]).unwrap();
        assert_eq!(v.get(0), Some(1.5));
        assert_eq!(v.get(4), Some(-2.0));
        assert_eq!(v.get(2), None);
        assert_eq!(v.get_or_zero(2), 0.0);
    }

    #[test]
    fn iter_stored_dense_and_sparse() {
        let v = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let collected: Vec<_> = v.iter_stored().collect();
        assert_eq!(collected, vec![(0, 1.0), (1, 2.0), (2, 3.0)]);

        let s = Vector::<f64>::from_entries(5, &[(1, 10.0), (3, 30.0)]).unwrap();
        let collected: Vec<_> = s.iter_stored().collect();
        assert_eq!(collected, vec![(1, 10.0), (3, 30.0)]);
        assert_eq!(s.iter_stored().size_hint(), (2, Some(2)));
    }

    #[test]
    fn fill_respects_pattern() {
        let mut s = Vector::<f64>::from_entries(4, &[(1, 1.0), (2, 2.0)]).unwrap();
        s.fill(9.0);
        assert_eq!(s.as_slice(), &[0.0, 9.0, 9.0, 0.0]);

        let mut d = Vector::<f64>::zeros(3);
        d.fill(7.0);
        assert_eq!(d.as_slice(), &[7.0; 3]);
    }

    #[test]
    fn clear_and_densify() {
        let mut s = Vector::<f64>::from_entries(3, &[(0, 5.0)]).unwrap();
        s.densify();
        assert!(s.is_dense());
        assert_eq!(
            s.get(2),
            Some(0.0),
            "densified entries become explicit zeros"
        );

        let mut t = Vector::<f64>::from_entries(3, &[(0, 5.0)]).unwrap();
        t.clear();
        assert!(t.is_dense());
        assert_eq!(t.as_slice(), &[0.0; 3]);
    }

    #[test]
    fn same_pattern() {
        let a = Vector::<f64>::from_entries(4, &[(1, 1.0)]).unwrap();
        let b = Vector::<f64>::from_entries(4, &[(1, 2.0)]).unwrap();
        let c = Vector::<f64>::from_entries(4, &[(2, 1.0)]).unwrap();
        assert!(a.same_pattern(&b));
        assert!(!a.same_pattern(&c));
        assert!(!a.same_pattern(&Vector::zeros(4)));
    }

    #[test]
    fn empty_vector() {
        let v = Vector::<f64>::zeros(0);
        assert!(v.is_empty());
        assert_eq!(v.iter_stored().count(), 0);
    }

    #[test]
    fn sparse_vector_basics() {
        let s = SparseVector::<f64>::from_entries(8, 0.0, &[(1, 2.0), (5, -3.0)]).unwrap();
        assert_eq!(s.len(), 8);
        assert_eq!(s.nvals(), 2);
        assert!(!s.is_promoted());
        assert_eq!(s.fill(), 0.0);
        assert_eq!(s.get(1), 2.0);
        assert_eq!(s.get(0), 0.0, "unstored reads as fill");
        assert_eq!(s.indices(), Some(&[1u32, 5][..]));
        assert_eq!(
            s.iter_stored().collect::<Vec<_>>(),
            vec![(1, 2.0), (5, -3.0)]
        );
        assert_eq!(s.to_dense().as_slice()[5], -3.0);
    }

    #[test]
    fn sparse_vector_nonzero_fill() {
        let s = SparseVector::<f64>::from_entries(6, f64::INFINITY, &[(2, 0.0), (4, 1.5)]).unwrap();
        assert_eq!(s.get(0), f64::INFINITY);
        assert_eq!(s.get(2), 0.0, "a stored fill-colliding value stays stored");
        let d = s.to_dense();
        assert_eq!(d.as_slice()[1], f64::INFINITY);
        assert_eq!(d.as_slice()[4], 1.5);
    }

    #[test]
    fn sparse_vector_promotion_rule() {
        // 2 of 8 stored: stays compressed.
        let s = SparseVector::<f64>::from_entries(8, 0.0, &[(0, 1.0), (7, 1.0)]).unwrap();
        assert!(!s.is_promoted());
        assert!(s.density() <= SparseVector::<f64>::DENSE_PROMOTION_THRESHOLD);
        // 5 of 8 stored: crosses the threshold and promotes.
        let entries: Vec<(u32, f64)> = (0..5).map(|i| (i, 1.0)).collect();
        let p = SparseVector::<f64>::from_entries(8, 0.0, &entries).unwrap();
        assert!(p.is_promoted());
        assert_eq!(p.nvals(), 8, "promoted vectors store every position");
        assert_eq!(p.get(6), 0.0, "holes filled with the fill value");
        // Promoted iteration covers every position.
        assert_eq!(p.iter_stored().count(), 8);
    }

    #[test]
    fn sparse_vector_rejects_bad_entries() {
        assert!(SparseVector::<f64>::from_entries(4, 0.0, &[(5, 1.0)]).is_err());
        assert!(SparseVector::<f64>::from_entries(4, 0.0, &[(2, 1.0), (2, 2.0)]).is_err());
        assert!(SparseVector::<f64>::from_entries(4, 0.0, &[(3, 1.0), (1, 2.0)]).is_err());
    }

    #[test]
    fn sparse_vector_round_trips_through_dense() {
        let v = Vector::from_dense(vec![0.0, 4.0, 0.0, 0.0, 0.0, 0.0, 0.0, 5.0]);
        let s = SparseVector::from_dense_vector(&v, 0.0);
        assert!(!s.is_promoted());
        assert_eq!(s.nvals(), 2);
        assert_eq!(s.to_dense(), v);
        // A mostly-stored input compresses past the threshold → promoted.
        let w = Vector::from_dense(vec![1.0, 2.0, 3.0, 0.0]);
        let t = SparseVector::from_dense_vector(&w, 0.0);
        assert!(t.is_promoted());
        assert_eq!(t.to_dense(), w);
    }

    #[test]
    fn sparse_vector_empty_and_promote() {
        let mut s = SparseVector::<f64>::empty(4, 0.0);
        assert_eq!(s.nvals(), 0);
        assert_eq!(s.density(), 0.0);
        s.promote();
        assert!(s.is_promoted());
        assert_eq!(s.to_dense().as_slice(), &[0.0; 4]);
        let z = SparseVector::<f64>::empty(0, 0.0);
        assert!(z.is_empty());
        assert_eq!(z.density(), 0.0);
    }
}
