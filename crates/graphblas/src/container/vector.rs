//! The GraphBLAS vector container.
//!
//! A [`Vector`] is logically a map from `0..len` to `T` where absent entries
//! mean the ambient semiring's additive identity. Storage is a dense value
//! array plus an optional **pattern**: a sorted list of stored indices.
//!
//! * HPCG's numeric vectors (`x`, `b`, `r`, …) are dense — no pattern.
//! * The RBGS color masks are *sparse boolean vectors*: only the rows of one
//!   color are stored. Masked operations iterate the pattern, which is what
//!   makes the per-color cost proportional to the color size, and what the
//!   `structural` descriptor exploits (it never touches `values`).

use crate::error::{GrbError, Result};
use crate::ops::scalar::Scalar;

/// A dense-or-sparse vector over domain `T`.
///
/// See the [module docs](self) for the storage model.
#[derive(Clone, Debug, PartialEq)]
pub struct Vector<T> {
    values: Vec<T>,
    /// Sorted, unique indices of stored entries; `None` means all stored.
    pattern: Option<Vec<u32>>,
}

impl<T: Scalar> Vector<T> {
    /// A dense vector of `n` domain zeros.
    pub fn zeros(n: usize) -> Self {
        Vector {
            values: vec![T::ZERO; n],
            pattern: None,
        }
    }

    /// A dense vector with every entry equal to `value`.
    pub fn filled(n: usize, value: T) -> Self {
        Vector {
            values: vec![value; n],
            pattern: None,
        }
    }

    /// Wraps an existing dense buffer.
    pub fn from_dense(values: Vec<T>) -> Self {
        Vector {
            values,
            pattern: None,
        }
    }

    /// A sparse vector of logical length `n` whose stored entries are
    /// `indices`, all set to `value`. Indices must be strictly increasing.
    ///
    /// This is the constructor for RBGS color masks: `value = true`.
    pub fn sparse_filled(n: usize, indices: Vec<u32>, value: T) -> Result<Self> {
        validate_pattern(n, &indices)?;
        let mut values = vec![T::ZERO; n];
        for &i in &indices {
            values[i as usize] = value;
        }
        Ok(Vector {
            values,
            pattern: Some(indices),
        })
    }

    /// A sparse vector from `(index, value)` entries with strictly
    /// increasing indices.
    pub fn from_entries(n: usize, entries: &[(u32, T)]) -> Result<Self> {
        let indices: Vec<u32> = entries.iter().map(|&(i, _)| i).collect();
        validate_pattern(n, &indices)?;
        let mut values = vec![T::ZERO; n];
        for &(i, v) in entries {
            values[i as usize] = v;
        }
        Ok(Vector {
            values,
            pattern: Some(indices),
        })
    }

    /// Logical length of the vector.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of stored entries (`len()` when dense).
    pub fn nnz(&self) -> usize {
        match &self.pattern {
            None => self.values.len(),
            Some(p) => p.len(),
        }
    }

    /// Whether every entry is stored.
    pub fn is_dense(&self) -> bool {
        self.pattern.is_none()
    }

    /// The stored-index pattern: `None` for dense vectors.
    #[inline(always)]
    pub fn pattern(&self) -> Option<&[u32]> {
        self.pattern.as_deref()
    }

    /// Dense view of the value buffer. Entries outside the pattern hold the
    /// domain zero.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }

    /// Mutable dense view of the value buffer.
    ///
    /// Writing through this view does **not** extend the pattern; use
    /// [`Vector::densify`] first when turning a sparse vector dense.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// The value at `i`, or `None` if `i` is not stored.
    pub fn get(&self, i: usize) -> Option<T> {
        if i >= self.values.len() {
            return None;
        }
        match &self.pattern {
            None => Some(self.values[i]),
            Some(p) => p.binary_search(&(i as u32)).ok().map(|_| self.values[i]),
        }
    }

    /// The value at `i`, treating unstored entries as the domain zero.
    #[inline(always)]
    pub fn get_or_zero(&self, i: usize) -> T {
        self.values.get(i).copied().unwrap_or(T::ZERO)
    }

    /// Iterates `(index, value)` over stored entries in increasing index order.
    pub fn iter_stored(&self) -> StoredIter<'_, T> {
        StoredIter {
            vector: self,
            cursor: 0,
        }
    }

    /// Sets every stored entry to `value` (dense: every entry).
    pub fn fill(&mut self, value: T) {
        match &self.pattern {
            None => self.values.iter_mut().for_each(|v| *v = value),
            Some(p) => {
                for &i in p {
                    self.values[i as usize] = value;
                }
            }
        }
    }

    /// Resets to a dense all-zero vector of the same length.
    pub fn clear(&mut self) {
        self.values.iter_mut().for_each(|v| *v = T::ZERO);
        self.pattern = None;
    }

    /// Drops the pattern, making all `len()` entries stored (unstored
    /// positions become explicit zeros).
    pub fn densify(&mut self) {
        self.pattern = None;
    }

    /// Euclidean-style structural check used in tests: do the stored
    /// patterns match?
    pub fn same_pattern(&self, other: &Vector<T>) -> bool {
        self.len() == other.len() && self.pattern == other.pattern
    }
}

impl<T> AsRef<[T]> for Vector<T> {
    fn as_ref(&self) -> &[T] {
        &self.values
    }
}

impl<T> AsMut<[T]> for Vector<T> {
    /// Dense mutable view (see [`Vector::as_mut_slice`] for pattern caveats).
    fn as_mut(&mut self) -> &mut [T] {
        &mut self.values
    }
}

/// Iterator over stored `(index, value)` pairs. See [`Vector::iter_stored`].
pub struct StoredIter<'a, T> {
    vector: &'a Vector<T>,
    cursor: usize,
}

impl<T: Scalar> Iterator for StoredIter<'_, T> {
    type Item = (usize, T);

    fn next(&mut self) -> Option<(usize, T)> {
        match self.vector.pattern() {
            None => {
                if self.cursor < self.vector.len() {
                    let i = self.cursor;
                    self.cursor += 1;
                    Some((i, self.vector.values[i]))
                } else {
                    None
                }
            }
            Some(p) => {
                if self.cursor < p.len() {
                    let i = p[self.cursor] as usize;
                    self.cursor += 1;
                    Some((i, self.vector.values[i]))
                } else {
                    None
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vector.nnz().saturating_sub(self.cursor);
        (rem, Some(rem))
    }
}

fn validate_pattern(n: usize, indices: &[u32]) -> Result<()> {
    for (k, &i) in indices.iter().enumerate() {
        if i as usize >= n {
            return Err(GrbError::IndexOutOfBounds {
                index: i as usize,
                len: n,
            });
        }
        if k > 0 && indices[k - 1] >= i {
            return Err(GrbError::InvalidInput(format!(
                "pattern indices must be strictly increasing, got {} then {}",
                indices[k - 1],
                i
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_construction() {
        let v = Vector::<f64>::zeros(4);
        assert_eq!(v.len(), 4);
        assert_eq!(v.nnz(), 4);
        assert!(v.is_dense());
        assert_eq!(v.as_slice(), &[0.0; 4]);

        let w = Vector::filled(3, 2.5);
        assert_eq!(w.as_slice(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn sparse_construction_and_access() {
        let m = Vector::<bool>::sparse_filled(6, vec![1, 3, 4], true).unwrap();
        assert_eq!(m.len(), 6);
        assert_eq!(m.nnz(), 3);
        assert!(!m.is_dense());
        assert_eq!(m.get(1), Some(true));
        assert_eq!(m.get(0), None, "unstored entries are absent");
        assert_eq!(m.get(99), None, "out of range is absent");
        assert!(!m.get_or_zero(0));
        assert_eq!(m.pattern(), Some(&[1u32, 3, 4][..]));
    }

    #[test]
    fn sparse_rejects_bad_patterns() {
        assert!(matches!(
            Vector::<f64>::sparse_filled(4, vec![0, 5], 1.0),
            Err(GrbError::IndexOutOfBounds { index: 5, len: 4 })
        ));
        assert!(Vector::<f64>::sparse_filled(4, vec![2, 2], 1.0).is_err());
        assert!(Vector::<f64>::sparse_filled(4, vec![3, 1], 1.0).is_err());
    }

    #[test]
    fn from_entries_places_values() {
        let v = Vector::<f64>::from_entries(5, &[(0, 1.5), (4, -2.0)]).unwrap();
        assert_eq!(v.get(0), Some(1.5));
        assert_eq!(v.get(4), Some(-2.0));
        assert_eq!(v.get(2), None);
        assert_eq!(v.get_or_zero(2), 0.0);
    }

    #[test]
    fn iter_stored_dense_and_sparse() {
        let v = Vector::from_dense(vec![1.0, 2.0, 3.0]);
        let collected: Vec<_> = v.iter_stored().collect();
        assert_eq!(collected, vec![(0, 1.0), (1, 2.0), (2, 3.0)]);

        let s = Vector::<f64>::from_entries(5, &[(1, 10.0), (3, 30.0)]).unwrap();
        let collected: Vec<_> = s.iter_stored().collect();
        assert_eq!(collected, vec![(1, 10.0), (3, 30.0)]);
        assert_eq!(s.iter_stored().size_hint(), (2, Some(2)));
    }

    #[test]
    fn fill_respects_pattern() {
        let mut s = Vector::<f64>::from_entries(4, &[(1, 1.0), (2, 2.0)]).unwrap();
        s.fill(9.0);
        assert_eq!(s.as_slice(), &[0.0, 9.0, 9.0, 0.0]);

        let mut d = Vector::<f64>::zeros(3);
        d.fill(7.0);
        assert_eq!(d.as_slice(), &[7.0; 3]);
    }

    #[test]
    fn clear_and_densify() {
        let mut s = Vector::<f64>::from_entries(3, &[(0, 5.0)]).unwrap();
        s.densify();
        assert!(s.is_dense());
        assert_eq!(
            s.get(2),
            Some(0.0),
            "densified entries become explicit zeros"
        );

        let mut t = Vector::<f64>::from_entries(3, &[(0, 5.0)]).unwrap();
        t.clear();
        assert!(t.is_dense());
        assert_eq!(t.as_slice(), &[0.0; 3]);
    }

    #[test]
    fn same_pattern() {
        let a = Vector::<f64>::from_entries(4, &[(1, 1.0)]).unwrap();
        let b = Vector::<f64>::from_entries(4, &[(1, 2.0)]).unwrap();
        let c = Vector::<f64>::from_entries(4, &[(2, 1.0)]).unwrap();
        assert!(a.same_pattern(&b));
        assert!(!a.same_pattern(&c));
        assert!(!a.same_pattern(&Vector::zeros(4)));
    }

    #[test]
    fn empty_vector() {
        let v = Vector::<f64>::zeros(0);
        assert!(v.is_empty());
        assert_eq!(v.iter_stored().count(), 0);
    }
}
