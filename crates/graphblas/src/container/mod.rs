//! Opaque containers: vectors and sparse matrices.
//!
//! GraphBLAS prescribes that containers be *opaque*: algorithms may not
//! assume a storage format (paper §II-H). Within this crate the storage is
//! of course concrete — [`vector::Vector`] is a dense value array with an
//! optional sparsity pattern, [`matrix::CsrMatrix`] is Compressed Sparse Row
//! — but the public algorithm-facing API exposes only algebraic accessors,
//! so every kernel in [`crate::exec`] works unchanged if storage evolves.

pub mod matrix;
pub mod vector;
