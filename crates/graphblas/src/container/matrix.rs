//! The GraphBLAS sparse matrix container (CSR storage).
//!
//! [`CsrMatrix`] stores nonzeroes in Compressed Sparse Row form — the three
//! arrays of the paper's §III-B — with `u32` column indices (HPCG-scale
//! problems have `n < 2³²`; the narrower index type halves index bandwidth,
//! per the performance guide's "smaller integers" advice).
//!
//! Construction validates invariants once; kernels may then rely on them:
//! `row_ptr` is monotone with `row_ptr[0] == 0`, column indices are strictly
//! increasing within each row and in bounds.

use crate::error::{check_dims, GrbError, Result};
use crate::ops::scalar::Scalar;

/// An immutable sparse matrix in Compressed Sparse Row format.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<T>,
    /// True when every column holds at most one nonzero. Transpose-`mxv`
    /// then scatters without write conflicts and may run in parallel
    /// (HPCG's restriction matrix has this property: straight injection).
    columns_conflict_free: bool,
}

impl<T: Scalar> CsrMatrix<T> {
    /// Builds from `(row, col, value)` triplets in any order.
    ///
    /// Duplicate `(row, col)` entries are combined by domain addition, the
    /// GraphBLAS build-with-`plus`-dup semantics.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, T)],
    ) -> Result<Self> {
        for &(r, c, _) in triplets {
            if r >= nrows {
                return Err(GrbError::IndexOutOfBounds {
                    index: r,
                    len: nrows,
                });
            }
            if c >= ncols {
                return Err(GrbError::IndexOutOfBounds {
                    index: c,
                    len: ncols,
                });
            }
        }
        // Counting sort by row, then sort each row segment by column.
        let mut counts = vec![0usize; nrows + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for i in 0..nrows {
            counts[i + 1] += counts[i];
        }
        let row_ptr_draft = counts.clone();
        let mut entries: Vec<(u32, T)> = vec![(0, T::ZERO); triplets.len()];
        {
            let mut cursor = counts;
            for &(r, c, v) in triplets {
                entries[cursor[r]] = (c as u32, v);
                cursor[r] += 1;
            }
        }
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        for r in 0..nrows {
            let seg = &mut entries[row_ptr_draft[r]..row_ptr_draft[r + 1]];
            seg.sort_unstable_by_key(|&(c, _)| c);
            // Combine duplicates by domain addition.
            let mut k = 0;
            while k < seg.len() {
                let (c, mut acc) = seg[k];
                let mut j = k + 1;
                while j < seg.len() && seg[j].0 == c {
                    acc = acc.add(seg[j].1);
                    j += 1;
                }
                col_idx.push(c);
                values.push(acc);
                k = j;
            }
            row_ptr.push(col_idx.len());
        }
        Self::from_csr(nrows, ncols, row_ptr, col_idx, values)
    }

    /// Builds from raw CSR arrays, validating all invariants.
    pub fn from_csr(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<T>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows + 1 {
            return Err(GrbError::InvalidInput(format!(
                "row_ptr length {} != nrows + 1 = {}",
                row_ptr.len(),
                nrows + 1
            )));
        }
        if row_ptr[0] != 0 {
            return Err(GrbError::InvalidInput("row_ptr[0] must be 0".into()));
        }
        if *row_ptr.last().unwrap() != col_idx.len() {
            return Err(GrbError::InvalidInput(format!(
                "row_ptr[last] = {} != nnz = {}",
                row_ptr.last().unwrap(),
                col_idx.len()
            )));
        }
        check_dims("from_csr", "values vs col_idx", col_idx.len(), values.len())?;
        for r in 0..nrows {
            if row_ptr[r] > row_ptr[r + 1] {
                return Err(GrbError::InvalidInput(format!(
                    "row_ptr not monotone at row {r}"
                )));
            }
            let seg = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for (k, &c) in seg.iter().enumerate() {
                if c as usize >= ncols {
                    return Err(GrbError::IndexOutOfBounds {
                        index: c as usize,
                        len: ncols,
                    });
                }
                if k > 0 && seg[k - 1] >= c {
                    return Err(GrbError::InvalidInput(format!(
                        "columns not strictly increasing in row {r}"
                    )));
                }
            }
        }
        let columns_conflict_free = {
            let mut seen = vec![false; ncols];
            let mut free = true;
            'outer: for &c in &col_idx {
                let c = c as usize;
                if seen[c] {
                    free = false;
                    break 'outer;
                }
                seen[c] = true;
            }
            free
        };
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
            columns_conflict_free,
        })
    }

    /// Builds row-by-row via a generator callback.
    ///
    /// `emit(r, &mut row)` must push `(col, value)` pairs with strictly
    /// increasing columns for row `r`. This is the zero-copy path the HPCG
    /// problem generator uses: no triplet buffer, no sorting.
    pub fn from_row_fn(
        nrows: usize,
        ncols: usize,
        nnz_hint: usize,
        mut emit: impl FnMut(usize, &mut Vec<(u32, T)>),
    ) -> Result<Self> {
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::with_capacity(nnz_hint);
        let mut values = Vec::with_capacity(nnz_hint);
        let mut scratch: Vec<(u32, T)> = Vec::with_capacity(32);
        row_ptr.push(0);
        for r in 0..nrows {
            scratch.clear();
            emit(r, &mut scratch);
            for &(c, v) in scratch.iter() {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Self::from_csr(nrows, ncols, row_ptr, col_idx, values)
    }

    /// Number of rows.
    #[inline(always)]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeroes.
    #[inline(always)]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Whether every column holds at most one nonzero (see struct docs).
    #[inline(always)]
    pub fn columns_conflict_free(&self) -> bool {
        self.columns_conflict_free
    }

    /// The `(columns, values)` slices of row `r`.
    #[inline(always)]
    pub fn row(&self, r: usize) -> (&[u32], &[T]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of nonzeroes in row `r`.
    #[inline(always)]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// The raw CSR arrays `(row_ptr, col_idx, values)`.
    ///
    /// Exposed for the *reference* (non-GraphBLAS) HPCG implementation,
    /// which the paper explicitly allows to reach past the opaque API
    /// (§III-B); GraphBLAS-side code must not use this.
    pub fn csr_parts(&self) -> (&[usize], &[u32], &[T]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }

    /// The stored value at `(r, c)`, if present.
    pub fn get(&self, r: usize, c: usize) -> Option<T> {
        if r >= self.nrows || c >= self.ncols {
            return None;
        }
        let (cols, vals) = self.row(r);
        cols.binary_search(&(c as u32)).ok().map(|k| vals[k])
    }

    /// Extracts the diagonal as a dense vector (absent diagonal entries
    /// become domain zero).
    ///
    /// HPCG stores `A_diag` separately because GraphBLAS does not allow
    /// constant-time access to individual matrix values (paper §III-A).
    pub fn extract_diagonal(&self) -> crate::Vector<T> {
        let n = self.nrows.min(self.ncols);
        let mut d = vec![T::ZERO; self.nrows];
        for (r, slot) in d.iter_mut().enumerate().take(n) {
            if let Some(v) = self.get(r, r) {
                *slot = v;
            }
        }
        crate::Vector::from_dense(d)
    }

    /// Materializes the transpose (used by tests and by `mxm`; the `mxv`
    /// kernels honor [`crate::Descriptor::TRANSPOSE`] without this).
    pub fn transpose(&self) -> CsrMatrix<T> {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![T::ZERO; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let pos = cursor[c as usize];
                col_idx[pos] = r as u32;
                values[pos] = v;
                cursor[c as usize] += 1;
            }
        }
        // Rows of the transpose inherit increasing order because we sweep
        // source rows in order; invariants hold by construction.
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
            columns_conflict_free: self.rows_at_most_one_nnz(),
        }
    }

    fn rows_at_most_one_nnz(&self) -> bool {
        (0..self.nrows).all(|r| self.row_nnz(r) <= 1)
    }

    /// Structural + numeric symmetry check (test/validation helper).
    pub fn is_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                match self.get(c as usize, r) {
                    Some(w) if w == v => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// Structural (pattern-only) symmetry: every stored `(r, c)` has a
    /// stored mirror `(c, r)`, values ignored. Returns the first
    /// unmirrored entry as `Err((r, c))` so validators can name it.
    pub fn check_pattern_symmetric(&self) -> std::result::Result<(), (usize, usize)> {
        for r in 0..self.nrows {
            let (cols, _) = self.row(r);
            for &c in cols {
                if self.get(c as usize, r).is_none() {
                    return Err((r, c as usize));
                }
            }
        }
        Ok(())
    }

    /// Iterates all stored entries as `(row, col, value)`.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Estimated resident bytes of the three CSR arrays — the storage-cost
    /// side of the paper's §III-B restriction-matrix discussion.
    pub fn storage_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<T>()
    }
}

/// A matrix bundled with its transpose: the CSR view for pull-mode (row
/// sweep) traversal and the CSC view — stored as the CSR of `Aᵀ` — for
/// push-mode (column scatter) traversal.
///
/// Direction-optimizing `mxv` needs both orientations of the same
/// adjacency available at kernel-selection time; `GraphMatrix` pays the
/// transpose once at construction so per-step mode switches are free.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphMatrix<T> {
    csr: CsrMatrix<T>,
    csc: CsrMatrix<T>,
}

impl<T: Scalar> GraphMatrix<T> {
    /// Bundles `a` with its materialized transpose.
    pub fn from_csr(a: CsrMatrix<T>) -> Self {
        let csc = a.transpose();
        GraphMatrix { csr: a, csc }
    }

    /// The row-oriented (CSR) view of `A`.
    #[inline(always)]
    pub fn csr(&self) -> &CsrMatrix<T> {
        &self.csr
    }

    /// The column-oriented view of `A`: the CSR storage of `Aᵀ`, whose
    /// row `j` lists the `(i, A[i,j])` entries of column `j` of `A`.
    #[inline(always)]
    pub fn csc(&self) -> &CsrMatrix<T> {
        &self.csc
    }

    /// Number of rows of `A`.
    #[inline(always)]
    pub fn nrows(&self) -> usize {
        self.csr.nrows()
    }

    /// Number of columns of `A`.
    #[inline(always)]
    pub fn ncols(&self) -> usize {
        self.csr.ncols()
    }

    /// Number of stored nonzeroes of `A`.
    #[inline(always)]
    pub fn nnz(&self) -> usize {
        self.csr.nnz()
    }

    /// Resident bytes across both orientations.
    pub fn storage_bytes(&self) -> usize {
        self.csr.storage_bytes() + self.csc.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix<f64> {
        // [[2, 0, 1],
        //  [0, 3, 0],
        //  [4, 0, 5]]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dims_and_nnz() {
        let a = small();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 3);
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.row_nnz(0), 2);
        assert_eq!(a.row_nnz(1), 1);
    }

    #[test]
    fn triplets_any_order_and_duplicates_sum() {
        let a = CsrMatrix::from_triplets(2, 2, &[(1, 1, 4.0), (0, 0, 1.0), (1, 1, 6.0)]).unwrap();
        assert_eq!(a.get(1, 1), Some(10.0), "duplicates combine by addition");
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn triplets_out_of_bounds() {
        assert!(matches!(
            CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]),
            Err(GrbError::IndexOutOfBounds { index: 2, len: 2 })
        ));
        assert!(matches!(
            CsrMatrix::from_triplets(2, 2, &[(0, 3, 1.0)]),
            Err(GrbError::IndexOutOfBounds { index: 3, len: 2 })
        ));
    }

    #[test]
    fn from_csr_validates() {
        // row_ptr too short
        assert!(CsrMatrix::<f64>::from_csr(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // row_ptr[0] != 0
        assert!(CsrMatrix::<f64>::from_csr(1, 2, vec![1, 1], vec![], vec![]).is_err());
        // last != nnz
        assert!(CsrMatrix::<f64>::from_csr(1, 2, vec![0, 2], vec![0], vec![1.0]).is_err());
        // non-monotone
        assert!(
            CsrMatrix::<f64>::from_csr(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err()
        );
        // columns not increasing
        assert!(CsrMatrix::<f64>::from_csr(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]).is_err());
        // column out of bounds
        assert!(CsrMatrix::<f64>::from_csr(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // values/col mismatch
        assert!(CsrMatrix::<f64>::from_csr(1, 2, vec![0, 1], vec![0], vec![]).is_err());
    }

    #[test]
    fn get_and_row_access() {
        let a = small();
        assert_eq!(a.get(0, 0), Some(2.0));
        assert_eq!(a.get(0, 1), None);
        assert_eq!(a.get(9, 0), None);
        let (cols, vals) = a.row(2);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[4.0, 5.0]);
    }

    #[test]
    fn extract_diagonal() {
        let a = small();
        let d = a.extract_diagonal();
        assert_eq!(d.as_slice(), &[2.0, 3.0, 5.0]);

        // Missing diagonal entries become zero.
        let b = CsrMatrix::from_triplets(2, 2, &[(0, 1, 7.0)]).unwrap();
        assert_eq!(b.extract_diagonal().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = small();
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.get(2, 0), Some(1.0));
        assert_eq!(t.get(0, 2), Some(4.0));
        let tt = t.transpose();
        for (r, c, v) in a.iter_entries() {
            assert_eq!(tt.get(r, c), Some(v));
        }
        assert_eq!(tt.nnz(), a.nnz());
    }

    #[test]
    fn transpose_rectangular() {
        let a = CsrMatrix::from_triplets(2, 4, &[(0, 3, 1.0), (1, 0, 2.0)]).unwrap();
        let t = a.transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(3, 0), Some(1.0));
        assert_eq!(t.get(0, 1), Some(2.0));
    }

    #[test]
    fn conflict_free_columns_detection() {
        // Injection-like: each column referenced at most once.
        let inj = CsrMatrix::from_triplets(2, 8, &[(0, 0, 1.0), (1, 4, 1.0)]).unwrap();
        assert!(inj.columns_conflict_free());
        // Column 0 used twice.
        let dup = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(!dup.columns_conflict_free());
    }

    #[test]
    fn symmetry_check() {
        let sym = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0)],
        )
        .unwrap();
        assert!(sym.is_symmetric());
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, -1.0)]).unwrap();
        assert!(!asym.is_symmetric());
        let rect = CsrMatrix::<f64>::from_triplets(1, 2, &[]).unwrap();
        assert!(!rect.is_symmetric());
    }

    #[test]
    fn from_row_fn_matches_triplets() {
        let by_fn = CsrMatrix::from_row_fn(3, 3, 5, |r, row| {
            if r == 0 {
                row.push((0, 2.0));
                row.push((2, 1.0));
            } else if r == 1 {
                row.push((1, 3.0));
            } else {
                row.push((0, 4.0));
                row.push((2, 5.0));
            }
        })
        .unwrap();
        assert_eq!(by_fn, small());
    }

    #[test]
    fn iter_entries_and_storage() {
        let a = small();
        let entries: Vec<_> = a.iter_entries().collect();
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[0], (0, 0, 2.0));
        assert!(a.storage_bytes() > 0);
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::<f64>::from_triplets(0, 0, &[]).unwrap();
        assert_eq!(a.nnz(), 0);
        assert!(a.is_symmetric());
        let t = a.transpose();
        assert_eq!(t.nrows(), 0);
    }

    #[test]
    fn pattern_symmetry_check() {
        // Pattern-symmetric but numerically asymmetric: 1.0 vs 9.0.
        let pat = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 9.0)]).unwrap();
        assert!(!pat.is_symmetric());
        assert_eq!(pat.check_pattern_symmetric(), Ok(()));
        // A directed edge names its unmirrored entry.
        let dir = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (2, 1, 1.0)]).unwrap();
        assert_eq!(dir.check_pattern_symmetric(), Err((2, 1)));
    }

    #[test]
    fn graph_matrix_bundles_both_orientations() {
        let a = small();
        let g = GraphMatrix::from_csr(a.clone());
        assert_eq!(g.nrows(), 3);
        assert_eq!(g.ncols(), 3);
        assert_eq!(g.nnz(), a.nnz());
        assert_eq!(g.csr(), &a);
        assert_eq!(g.csc(), &a.transpose());
        // Column 0 of A = row 0 of the CSC view: entries from rows 0 and 2.
        let (rows, vals) = g.csc().row(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[2.0, 4.0]);
        assert_eq!(
            g.storage_bytes(),
            a.storage_bytes() + g.csc().storage_bytes()
        );
    }
}
