//! Classic graph algorithms over the GraphBLAS primitives.
//!
//! The paper's premise (§II-H) is that one small set of algebraic
//! primitives serves "multiple applications on sparse data". This module
//! is the evidence within this crate: breadth-first search (boolean
//! semiring), single-source shortest paths (tropical `MinPlus` semiring)
//! and PageRank (`PlusTimes`), each a thin loop over `mxv`-family calls
//! off an execution context — no algorithm-specific sparse code, and no
//! backend-specific code either: the same functions run sequential,
//! shared-memory parallel, or distributed over the simulated BSP cluster
//! (`Distributed::new(p).ctx()`), where every `mxv` records its allgather
//! and every reduction its allreduce.
//!
//! # Sparse frontiers
//!
//! The traversals run on [`SparseVector`] frontiers through the
//! direction-optimizing kernel ([`Ctx::mxv_sparse`]): each step does work
//! proportional to the frontier, not to `n`, and the kernel picks push
//! (column scatter) or pull (dense row sweep) by frontier density. The
//! `*_on` variants take a pre-built [`GraphMatrix`] (both orientations)
//! and additionally return [`FrontierStats`] — the push/pull decision
//! counts. The original signatures ([`bfs_levels`], [`sssp`],
//! [`pagerank`]) are kept as thin wrappers, and the historical dense
//! implementations remain as `*_dense` oracles: results are pinned
//! bit-identical by the tests here and by the cross-backend property
//! tests.

use crate::container::matrix::{CsrMatrix, GraphMatrix};
use crate::container::vector::{SparseVector, Vector};
use crate::context::{Ctx, Exec};
use crate::error::{check_dims, GrbError, Result};
use crate::exec::sparse::FrontierMode;
use crate::ops::binary::{Lor, Max, Plus};
use crate::ops::monoid::Monoid;
use crate::ops::semiring::{MinPlus, Semiring};

/// Logical-or/and semiring for reachability propagation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LorLand;

impl Semiring<f64> for LorLand {
    type Add = Lor;
    type Mul = crate::ops::binary::Land;

    // `Land(a, 0.0) == 0.0` and `Lor(acc, 0.0)` re-emits acc's truth value
    // (always an exact 0.0 or 1.0 here), so push mode may skip absent
    // frontier entries bit-exactly.
    const ANNIHILATING_ZERO: bool = true;
}

/// Push/pull decision counts from a sparse-frontier traversal.
///
/// One of the two counters is bumped per `mxv_sparse` step; the serve
/// layer aggregates these into its service stats and per-tenant meter.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// Steps executed in push (column-scatter) orientation.
    pub push_steps: usize,
    /// Steps executed in pull (dense row sweep) orientation.
    pub pull_steps: usize,
}

impl FrontierStats {
    /// Bumps the counter for one executed step.
    pub fn note(&mut self, mode: FrontierMode) {
        match mode {
            FrontierMode::Push => self.push_steps += 1,
            FrontierMode::Pull => self.pull_steps += 1,
        }
    }

    /// Total steps recorded.
    pub fn steps(&self) -> usize {
        self.push_steps + self.pull_steps
    }

    /// Folds another traversal's counts into this one.
    pub fn absorb(&mut self, other: FrontierStats) {
        self.push_steps += other.push_steps;
        self.pull_steps += other.pull_steps;
    }
}

fn check_square_and_source(
    op: &'static str,
    n_rows: usize,
    n_cols: usize,
    source: usize,
) -> Result<usize> {
    check_dims(op, "adjacency must be square", n_rows, n_cols)?;
    if source >= n_rows {
        return Err(GrbError::IndexOutOfBounds {
            index: source,
            len: n_rows,
        });
    }
    Ok(n_rows)
}

/// Breadth-first search from `source` on the pattern of `a` (an edge
/// `i→j` is a stored entry at `A[j, i]`, the usual GraphBLAS "push"
/// orientation). Returns per-vertex levels: `0` for the source, `k` for
/// vertices first reached after `k` hops, `-1` for unreachable.
///
/// Runs on sparse frontiers via [`bfs_levels_on`] (building the
/// [`GraphMatrix`] internally); results are bit-identical to
/// [`bfs_levels_dense`].
pub fn bfs_levels<E: Exec>(exec: Ctx<E>, a: &CsrMatrix<f64>, source: usize) -> Result<Vec<i64>> {
    let g = GraphMatrix::from_csr(a.clone());
    Ok(bfs_levels_on(exec, &g, source)?.0)
}

/// [`bfs_levels`] on a pre-built [`GraphMatrix`], with push/pull counts.
pub fn bfs_levels_on<E: Exec>(
    exec: Ctx<E>,
    g: &GraphMatrix<f64>,
    source: usize,
) -> Result<(Vec<i64>, FrontierStats)> {
    let n = check_square_and_source("bfs", g.nrows(), g.ncols(), source)?;
    let mut levels = vec![-1i64; n];
    levels[source] = 0;
    let mut stats = FrontierStats::default();
    // Frontier over the Lor-Land ring: stored 1.0 at the fresh vertices.
    let mut frontier = SparseVector::from_entries(n, 0.0, &[(source as u32, 1.0)])?;
    let mut next = Vector::<f64>::zeros(n);
    for depth in 1..=n as i64 {
        stats.note(
            exec.mxv_sparse(g, &frontier)
                .ring(LorLand)
                .into(&mut next)?,
        );
        // Prune already-visited vertices and record fresh ones.
        let mut fresh: Vec<(u32, f64)> = Vec::new();
        for (i, v) in next.as_slice().iter().enumerate() {
            if *v != 0.0 && levels[i] < 0 {
                levels[i] = depth;
                fresh.push((i as u32, 1.0));
            }
        }
        if fresh.is_empty() {
            break;
        }
        frontier = SparseVector::from_entries(n, 0.0, &fresh)?;
    }
    Ok((levels, stats))
}

/// The historical dense-frontier BFS, kept as the bit-exactness oracle
/// for the sparse path.
pub fn bfs_levels_dense<E: Exec>(
    exec: Ctx<E>,
    a: &CsrMatrix<f64>,
    source: usize,
) -> Result<Vec<i64>> {
    let n = check_square_and_source("bfs", a.nrows(), a.ncols(), source)?;
    let mut levels = vec![-1i64; n];
    levels[source] = 0;
    // Frontier and visited as 0/1-valued f64 vectors over the Lor-Land ring.
    let mut frontier = Vector::<f64>::zeros(n);
    frontier.as_mut_slice()[source] = 1.0;
    let mut next = Vector::<f64>::zeros(n);
    for depth in 1..=n as i64 {
        exec.mxv(a, &frontier).ring(LorLand).into(&mut next)?;
        // Prune already-visited vertices and record fresh ones.
        let mut any = false;
        {
            let ns = next.as_mut_slice();
            for (i, v) in ns.iter_mut().enumerate() {
                if *v != 0.0 {
                    if levels[i] >= 0 {
                        *v = 0.0;
                    } else {
                        levels[i] = depth;
                        any = true;
                    }
                }
            }
        }
        if !any {
            break;
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    Ok(levels)
}

/// Single-source shortest paths by Bellman-Ford relaxation over the
/// tropical semiring: `d ← min(d, A ⊕.⊗ d)` with `⊕ = min`, `⊗ = +`.
/// Edge `i→j` with weight `w` is `A[j, i] = w`. Returns `+∞` for
/// unreachable vertices; errors on negative cycles.
///
/// Runs on sparse frontiers via [`sssp_on`]; results are bit-identical
/// to [`sssp_dense`] (each round only the vertices whose distance
/// improved re-relax — candidates from unchanged vertices were already
/// applied the round they last improved, so dropping them changes
/// nothing).
pub fn sssp<E: Exec>(exec: Ctx<E>, a: &CsrMatrix<f64>, source: usize) -> Result<Vec<f64>> {
    let g = GraphMatrix::from_csr(a.clone());
    Ok(sssp_on(exec, &g, source)?.0)
}

/// [`sssp`] on a pre-built [`GraphMatrix`], with push/pull counts.
pub fn sssp_on<E: Exec>(
    exec: Ctx<E>,
    g: &GraphMatrix<f64>,
    source: usize,
) -> Result<(Vec<f64>, FrontierStats)> {
    let n = check_square_and_source("sssp", g.nrows(), g.ncols(), source)?;
    let mut dist = vec![f64::INFINITY; n];
    dist[source] = 0.0;
    let mut stats = FrontierStats::default();
    // Frontier carries the improved distances; absent entries are +∞ —
    // the MinPlus zero, so push mode stays bit-exact.
    let mut frontier = SparseVector::from_entries(n, f64::INFINITY, &[(source as u32, 0.0)])?;
    let mut relaxed = Vector::<f64>::zeros(n);
    for round in 0..n {
        stats.note(
            exec.mxv_sparse(g, &frontier)
                .ring(MinPlus)
                .into(&mut relaxed)?,
        );
        // d ← min(d, relaxed) element-wise; the improvers form the next
        // frontier.
        let rs = relaxed.as_slice();
        let mut improved: Vec<(u32, f64)> = Vec::new();
        for (i, d) in dist.iter_mut().enumerate() {
            if rs[i] < *d {
                *d = rs[i];
                improved.push((i as u32, rs[i]));
            }
        }
        if improved.is_empty() {
            return Ok((dist, stats));
        }
        if round == n - 1 {
            return Err(GrbError::InvalidInput("negative cycle detected".into()));
        }
        frontier = SparseVector::from_entries(n, f64::INFINITY, &improved)?;
    }
    Ok((dist, stats))
}

/// The historical dense Bellman-Ford, kept as the bit-exactness oracle
/// for the sparse path.
pub fn sssp_dense<E: Exec>(exec: Ctx<E>, a: &CsrMatrix<f64>, source: usize) -> Result<Vec<f64>> {
    let n = check_square_and_source("sssp", a.nrows(), a.ncols(), source)?;
    let mut dist = Vector::<f64>::filled(n, f64::INFINITY);
    dist.as_mut_slice()[source] = 0.0;
    let mut relaxed = Vector::<f64>::zeros(n);
    for round in 0..n {
        exec.mxv(a, &dist).ring(MinPlus).into(&mut relaxed)?;
        // d ← min(d, relaxed) element-wise; track whether anything moved.
        let mut changed = false;
        {
            let ds = dist.as_mut_slice();
            let rs = relaxed.as_slice();
            for i in 0..n {
                if rs[i] < ds[i] {
                    ds[i] = rs[i];
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(dist.as_slice().to_vec());
        }
        if round == n - 1 && changed {
            return Err(GrbError::InvalidInput("negative cycle detected".into()));
        }
    }
    Ok(dist.as_slice().to_vec())
}

/// PageRank by power iteration: `r ← d·M·r + (1−d)/n` until the max
/// per-vertex change drops below `tol`. `m` must be column-stochastic
/// (`M[j, i] = 1/outdeg(i)` for each edge `i→j`). Returns the rank vector
/// and the iteration count.
///
/// The rank vector is inherently dense, so the sparse path promotes it
/// every iteration and the direction-optimizing kernel always pulls —
/// which *is* the dense kernel, hence bit-identical to
/// [`pagerank_dense`] by construction.
pub fn pagerank<E: Exec>(
    exec: Ctx<E>,
    m: &CsrMatrix<f64>,
    damping: f64,
    tol: f64,
    max_iters: usize,
) -> Result<(Vector<f64>, usize)> {
    let g = GraphMatrix::from_csr(m.clone());
    let (rank, iters, _) = pagerank_on(exec, &g, damping, tol, max_iters)?;
    Ok((rank, iters))
}

/// [`pagerank`] on a pre-built [`GraphMatrix`], with push/pull counts.
pub fn pagerank_on<E: Exec>(
    exec: Ctx<E>,
    g: &GraphMatrix<f64>,
    damping: f64,
    tol: f64,
    max_iters: usize,
) -> Result<(Vector<f64>, usize, FrontierStats)> {
    check_dims(
        "pagerank",
        "transition must be square",
        g.nrows(),
        g.ncols(),
    )?;
    if !(0.0..1.0).contains(&damping) {
        return Err(GrbError::InvalidInput(format!(
            "damping {damping} outside [0, 1)"
        )));
    }
    let n = g.nrows();
    let mut stats = FrontierStats::default();
    if n == 0 {
        return Ok((Vector::zeros(0), 0, stats));
    }
    let teleport = Vector::filled(n, (1.0 - damping) / n as f64);
    let mut rank = Vector::filled(n, 1.0 / n as f64);
    let mut next = Vector::zeros(n);
    for iter in 1..=max_iters {
        let sparse_rank = SparseVector::promoted(rank.as_slice().to_vec(), 0.0);
        stats.note(exec.mxv_sparse(g, &sparse_rank).into(&mut next)?);
        let scaled = next.clone();
        exec.ewise(&scaled, &teleport)
            .scaled(damping, 1.0)
            .into(&mut next)?;
        // Convergence via the max-abs-difference monoid fold.
        let mut diff_vec = Vector::zeros(n);
        exec.ewise(&next, &rank)
            .scaled(1.0, -1.0)
            .into(&mut diff_vec)?;
        let diff_abs = Vector::from_dense(diff_vec.as_slice().iter().map(|v| v.abs()).collect());
        let diff = exec.reduce(&diff_abs).monoid(Max).compute()?;
        std::mem::swap(&mut rank, &mut next);
        if diff < tol {
            return Ok((rank, iter, stats));
        }
    }
    Ok((rank, max_iters, stats))
}

/// The historical dense power iteration, kept as the bit-exactness
/// oracle for the sparse path.
pub fn pagerank_dense<E: Exec>(
    exec: Ctx<E>,
    m: &CsrMatrix<f64>,
    damping: f64,
    tol: f64,
    max_iters: usize,
) -> Result<(Vector<f64>, usize)> {
    check_dims(
        "pagerank",
        "transition must be square",
        m.nrows(),
        m.ncols(),
    )?;
    if !(0.0..1.0).contains(&damping) {
        return Err(GrbError::InvalidInput(format!(
            "damping {damping} outside [0, 1)"
        )));
    }
    let n = m.nrows();
    if n == 0 {
        return Ok((Vector::zeros(0), 0));
    }
    let teleport = Vector::filled(n, (1.0 - damping) / n as f64);
    let mut rank = Vector::filled(n, 1.0 / n as f64);
    let mut next = Vector::zeros(n);
    for iter in 1..=max_iters {
        exec.mxv(m, &rank).into(&mut next)?;
        let scaled = next.clone();
        exec.ewise(&scaled, &teleport)
            .scaled(damping, 1.0)
            .into(&mut next)?;
        // Convergence via the max-abs-difference monoid fold.
        let mut diff_vec = Vector::zeros(n);
        exec.ewise(&next, &rank)
            .scaled(1.0, -1.0)
            .into(&mut diff_vec)?;
        let diff_abs = Vector::from_dense(diff_vec.as_slice().iter().map(|v| v.abs()).collect());
        let diff = exec.reduce(&diff_abs).monoid(Max).compute()?;
        std::mem::swap(&mut rank, &mut next);
        if diff < tol {
            return Ok((rank, iter));
        }
    }
    Ok((rank, max_iters))
}

/// Number of triangles in an undirected graph via the Burkhardt formula
/// `tr(A³)/6`, computed as `Σ_i ⟨(A²)_i, A_i⟩ / 6` with one `mxm` and an
/// element-wise dot — a staple GraphBLAS benchmark kernel.
///
/// The formula is only meaningful on an undirected graph, so the input
/// contract is validated up front: `a` must be square **and**
/// pattern-symmetric (every stored `A[r, c]` mirrored by a stored
/// `A[c, r]`; values may differ). A directed input used to silently
/// miscount — now it is a typed [`GrbError::InvalidInput`] naming the
/// first unmirrored entry.
pub fn triangle_count<E: Exec>(exec: Ctx<E>, a: &CsrMatrix<f64>) -> Result<usize> {
    check_dims("tricount", "adjacency must be square", a.nrows(), a.ncols())?;
    if let Err((r, c)) = a.check_pattern_symmetric() {
        return Err(GrbError::InvalidInput(format!(
            "tricount needs a pattern-symmetric adjacency: entry ({r}, {c}) has no mirrored ({c}, {r})"
        )));
    }
    let a2 = exec.mxm(a, a).compute()?;
    let mut total = 0.0;
    for r in 0..a.nrows() {
        let (cols_a, vals_a) = a.row(r);
        let (cols_b, vals_b) = a2.row(r);
        // Sparse dot of the two rows (both sorted).
        let (mut i, mut j) = (0, 0);
        while i < cols_a.len() && j < cols_b.len() {
            match cols_a[i].cmp(&cols_b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    total += vals_a[i] * vals_b[j];
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    Ok((total / 6.0).round() as usize)
}

/// Sum of a vector's entries over `Plus` — convenience used by examples.
pub fn mass<E: Exec>(exec: Ctx<E>, x: &Vector<f64>) -> Result<f64> {
    let ones = Vector::filled(x.len(), 1.0);
    exec.dot(x, &ones).compute()
}

// Suppress an unused-import lint path: Monoid is used via bounds above.
const _: fn() -> f64 = <Plus as Monoid<f64>>::identity;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::dist::Distributed;
    use crate::backend::{Parallel, Sequential};
    use crate::context::{ctx, ctx_on, BackendKind};

    /// Directed path 0→1→2→3 plus a shortcut 0→3 (weight 10).
    fn path_graph() -> CsrMatrix<f64> {
        // A[j, i] = w for edge i→j.
        CsrMatrix::from_triplets(4, 4, &[(1, 0, 1.0), (2, 1, 1.0), (3, 2, 1.0), (3, 0, 10.0)])
            .unwrap()
    }

    #[test]
    fn bfs_levels_on_path() {
        let a = path_graph();
        let levels = bfs_levels(ctx::<Sequential>(), &a, 0).unwrap();
        assert_eq!(
            levels,
            vec![0, 1, 2, 1],
            "vertex 3 reached in one hop via the shortcut"
        );
        let from2 = bfs_levels(ctx::<Sequential>(), &a, 2).unwrap();
        assert_eq!(from2, vec![-1, -1, 0, 1], "no back edges");
    }

    #[test]
    fn bfs_bad_source() {
        let a = path_graph();
        assert!(bfs_levels(ctx::<Sequential>(), &a, 99).is_err());
    }

    #[test]
    fn sssp_prefers_cheap_path() {
        let a = path_graph();
        let d = sssp(ctx::<Sequential>(), &a, 0).unwrap();
        assert_eq!(
            d,
            vec![0.0, 1.0, 2.0, 3.0],
            "3 hops of cost 1 beat the cost-10 shortcut"
        );
    }

    #[test]
    fn sssp_unreachable_is_infinite() {
        let a = CsrMatrix::from_triplets(3, 3, &[(1, 0, 2.0)]).unwrap();
        let d = sssp(ctx::<Sequential>(), &a, 0).unwrap();
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 2.0);
        assert_eq!(d[2], f64::INFINITY);
    }

    #[test]
    fn sssp_detects_negative_cycle() {
        let a = CsrMatrix::from_triplets(2, 2, &[(1, 0, -1.0), (0, 1, -1.0)]).unwrap();
        assert!(matches!(
            sssp(ctx::<Sequential>(), &a, 0),
            Err(GrbError::InvalidInput(_))
        ));
        assert!(matches!(
            sssp_dense(ctx::<Sequential>(), &a, 0),
            Err(GrbError::InvalidInput(_))
        ));
    }

    #[test]
    fn pagerank_mass_conserved_and_hub_wins() {
        // Star: everyone links to vertex 0; 0 links to 1.
        let n = 6;
        let mut edges = vec![(0usize, 1usize)];
        for v in 1..n {
            edges.push((v, 0));
        }
        let mut outdeg = vec![0usize; n];
        for &(s, _) in &edges {
            outdeg[s] += 1;
        }
        let trips: Vec<(usize, usize, f64)> = edges
            .iter()
            .map(|&(s, d)| (d, s, 1.0 / outdeg[s] as f64))
            .collect();
        let m = CsrMatrix::from_triplets(n, n, &trips).unwrap();
        let (rank, iters) = pagerank(ctx::<Sequential>(), &m, 0.85, 1e-12, 500).unwrap();
        assert!(iters < 500, "must converge");
        let total = mass(ctx::<Sequential>(), &rank).unwrap();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "probability mass conserved, got {total}"
        );
        let best = rank
            .as_slice()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 0, "the star center ranks first");
    }

    #[test]
    fn pagerank_rejects_bad_damping() {
        let m = CsrMatrix::<f64>::from_triplets(1, 1, &[(0, 0, 1.0)]).unwrap();
        assert!(pagerank(ctx::<Sequential>(), &m, 1.5, 1e-6, 10).is_err());
    }

    #[test]
    fn triangle_count_k4_and_triangle() {
        // One triangle.
        let tri = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (0, 2, 1.0),
                (2, 0, 1.0),
            ],
        )
        .unwrap();
        assert_eq!(triangle_count(ctx::<Sequential>(), &tri).unwrap(), 1);

        // K4 has C(4,3) = 4 triangles.
        let mut e = Vec::new();
        for i in 0..4usize {
            for j in 0..4usize {
                if i != j {
                    e.push((i, j, 1.0));
                }
            }
        }
        let k4 = CsrMatrix::from_triplets(4, 4, &e).unwrap();
        assert_eq!(triangle_count(ctx::<Sequential>(), &k4).unwrap(), 4);

        // Triangle-free square.
        let sq = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (3, 0, 1.0),
                (0, 3, 1.0),
            ],
        )
        .unwrap();
        assert_eq!(triangle_count(ctx::<Sequential>(), &sq).unwrap(), 0);
    }

    #[test]
    fn triangle_count_rejects_directed_input() {
        // The path graph is directed: (1, 0) has no mirrored (0, 1).
        let a = path_graph();
        match triangle_count(ctx::<Sequential>(), &a) {
            Err(GrbError::InvalidInput(msg)) => {
                assert!(
                    msg.contains("pattern-symmetric") && msg.contains("(1, 0)"),
                    "error names the first unmirrored entry: {msg}"
                );
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
        // Values may differ across the diagonal — only the pattern counts.
        let weighted = CsrMatrix::from_triplets(2, 2, &[(0, 1, 5.0), (1, 0, 7.0)]).unwrap();
        assert_eq!(triangle_count(ctx::<Sequential>(), &weighted).unwrap(), 0);
    }

    #[test]
    fn triangle_count_rejects_non_square() {
        let a = CsrMatrix::<f64>::from_triplets(2, 3, &[(0, 1, 1.0)]).unwrap();
        assert!(matches!(
            triangle_count(ctx::<Sequential>(), &a),
            Err(GrbError::DimensionMismatch { .. })
        ));
    }

    /// A 2D 8-point-stencil graph: sparse frontiers early, so BFS pushes.
    fn stencil(n: usize) -> CsrMatrix<f64> {
        let idx = |x: usize, y: usize| x + n * y;
        let mut trips = Vec::new();
        for y in 0..n {
            for x in 0..n {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let (xx, yy) = (x as i64 + dx, y as i64 + dy);
                        if (0..n as i64).contains(&xx) && (0..n as i64).contains(&yy) {
                            trips.push((
                                idx(xx as usize, yy as usize),
                                idx(x, y),
                                1.0 + ((x + 3 * y) % 5) as f64,
                            ));
                        }
                    }
                }
            }
        }
        CsrMatrix::from_triplets(n * n, n * n, &trips).unwrap()
    }

    #[test]
    fn sparse_bfs_matches_dense_on_all_backends() {
        let a = stencil(12);
        let expected = bfs_levels_dense(ctx::<Sequential>(), &a, 0).unwrap();
        let g = GraphMatrix::from_csr(a.clone());
        for kind in [
            BackendKind::Sequential,
            BackendKind::Parallel,
            BackendKind::Dist(Distributed::new(3)),
        ] {
            let (levels, stats) = bfs_levels_on(ctx_on(kind), &g, 0).unwrap();
            assert_eq!(levels, expected, "{kind} diverged");
            assert!(stats.push_steps > 0, "{kind}: early frontiers must push");
            assert!(stats.pull_steps > 0, "{kind}: late frontiers must pull");
        }
    }

    #[test]
    fn sparse_sssp_matches_dense_on_all_backends() {
        let a = stencil(10);
        let expected = sssp_dense(ctx::<Sequential>(), &a, 3).unwrap();
        let g = GraphMatrix::from_csr(a.clone());
        for kind in [
            BackendKind::Sequential,
            BackendKind::Parallel,
            BackendKind::Dist(Distributed::new(3)),
        ] {
            let (dist, stats) = sssp_on(ctx_on(kind), &g, 3).unwrap();
            for (got, want) in dist.iter().zip(&expected) {
                assert_eq!(got.to_bits(), want.to_bits(), "{kind} diverged");
            }
            assert!(stats.steps() > 0);
        }
    }

    #[test]
    fn sparse_pagerank_matches_dense_and_always_pulls() {
        let a = stencil(6);
        // Column-normalize so the transition matrix is stochastic.
        let n = a.nrows();
        let mut coldeg = vec![0.0f64; n];
        let (_, cols, _) = a.csr_parts();
        for &c in cols {
            coldeg[c as usize] += 1.0;
        }
        let mut trips = Vec::new();
        for r in 0..n {
            let (cs, _) = a.row(r);
            for &c in cs {
                trips.push((r, c as usize, 1.0 / coldeg[c as usize]));
            }
        }
        let m = CsrMatrix::from_triplets(n, n, &trips).unwrap();
        let (want_rank, want_iters) =
            pagerank_dense(ctx::<Sequential>(), &m, 0.85, 1e-10, 200).unwrap();
        let g = GraphMatrix::from_csr(m.clone());
        for kind in [
            BackendKind::Sequential,
            BackendKind::Parallel,
            BackendKind::Dist(Distributed::new(2)),
        ] {
            let (rank, iters, stats) = pagerank_on(ctx_on(kind), &g, 0.85, 1e-10, 200).unwrap();
            assert_eq!(iters, want_iters, "{kind} iteration count diverged");
            for (got, want) in rank.as_slice().iter().zip(want_rank.as_slice()) {
                assert_eq!(got.to_bits(), want.to_bits(), "{kind} diverged");
            }
            assert_eq!(stats.push_steps, 0, "promoted rank vector always pulls");
            assert_eq!(stats.pull_steps, iters);
        }
    }

    #[test]
    fn sparse_traversal_bills_less_communication_than_dense() {
        // On the distributed backend the sparse frontier exchange must be
        // cheaper than the dense allgather the old path paid every step.
        let a = stencil(12);
        let cluster_sparse = Distributed::new(4);
        let (_, stats) =
            bfs_levels_on(cluster_sparse.ctx(), &GraphMatrix::from_csr(a.clone()), 0).unwrap();
        assert!(stats.push_steps > 0);
        let sparse_bytes: f64 = cluster_sparse.take_steps().iter().map(|s| s.h_bytes).sum();
        let cluster_dense = Distributed::new(4);
        bfs_levels_dense(cluster_dense.ctx(), &a, 0).unwrap();
        let dense_bytes: f64 = cluster_dense.take_steps().iter().map(|s| s.h_bytes).sum();
        assert!(
            sparse_bytes < dense_bytes,
            "sparse frontiers must bill less than the dense allgather: {sparse_bytes} vs {dense_bytes}"
        );
    }

    #[test]
    fn parallel_sparse_equals_sequential_sparse() {
        let a = stencil(9);
        let g = GraphMatrix::from_csr(a);
        let (seq_levels, seq_stats) = bfs_levels_on(ctx::<Sequential>(), &g, 5).unwrap();
        let (par_levels, par_stats) = bfs_levels_on(ctx::<Parallel>(), &g, 5).unwrap();
        assert_eq!(seq_levels, par_levels);
        assert_eq!(
            seq_stats, par_stats,
            "mode decisions are data-dependent only"
        );
    }

    #[test]
    fn bfs_on_hpcg_style_grid_matches_manhattan_like_metric() {
        // On a 27-point-stencil graph, BFS level = Chebyshev distance.
        let n = 4usize;
        let idx = |x: usize, y: usize| x + n * y;
        let mut trips = Vec::new();
        for y in 0..n {
            for x in 0..n {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let (xx, yy) = (x as i64 + dx, y as i64 + dy);
                        if (0..n as i64).contains(&xx) && (0..n as i64).contains(&yy) {
                            trips.push((idx(xx as usize, yy as usize), idx(x, y), 1.0));
                        }
                    }
                }
            }
        }
        let a = CsrMatrix::from_triplets(n * n, n * n, &trips).unwrap();
        let levels = bfs_levels(ctx::<Sequential>(), &a, idx(0, 0)).unwrap();
        for y in 0..n {
            for x in 0..n {
                assert_eq!(
                    levels[idx(x, y)],
                    x.max(y) as i64,
                    "Chebyshev distance at ({x},{y})"
                );
            }
        }
    }
}
