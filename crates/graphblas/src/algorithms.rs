//! Classic graph algorithms over the GraphBLAS primitives.
//!
//! The paper's premise (§II-H) is that one small set of algebraic
//! primitives serves "multiple applications on sparse data". This module
//! is the evidence within this crate: breadth-first search (boolean
//! semiring), single-source shortest paths (tropical `MinPlus` semiring)
//! and PageRank (`PlusTimes`), each a thin loop over `mxv`-family calls
//! off an execution context — no algorithm-specific sparse code, and no
//! backend-specific code either: the same functions run sequential,
//! shared-memory parallel, or distributed over the simulated BSP cluster
//! (`Distributed::new(p).ctx()`), where every `mxv` records its allgather
//! and every reduction its allreduce.

use crate::container::matrix::CsrMatrix;
use crate::container::vector::Vector;
use crate::context::{Ctx, Exec};
use crate::error::{check_dims, GrbError, Result};
use crate::ops::binary::{Lor, Max, Plus};
use crate::ops::monoid::Monoid;
use crate::ops::semiring::{MinPlus, Semiring};

/// Logical-or/and semiring for reachability propagation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LorLand;

impl Semiring<f64> for LorLand {
    type Add = Lor;
    type Mul = crate::ops::binary::Land;
}

/// Breadth-first search from `source` on the pattern of `a` (an edge
/// `i→j` is a stored entry at `A[j, i]`, the usual GraphBLAS "push"
/// orientation). Returns per-vertex levels: `0` for the source, `k` for
/// vertices first reached after `k` hops, `-1` for unreachable.
pub fn bfs_levels<E: Exec>(exec: Ctx<E>, a: &CsrMatrix<f64>, source: usize) -> Result<Vec<i64>> {
    check_dims("bfs", "adjacency must be square", a.nrows(), a.ncols())?;
    let n = a.nrows();
    if source >= n {
        return Err(GrbError::IndexOutOfBounds {
            index: source,
            len: n,
        });
    }
    let mut levels = vec![-1i64; n];
    levels[source] = 0;
    // Frontier and visited as 0/1-valued f64 vectors over the Lor-Land ring.
    let mut frontier = Vector::<f64>::zeros(n);
    frontier.as_mut_slice()[source] = 1.0;
    let mut next = Vector::<f64>::zeros(n);
    for depth in 1..=n as i64 {
        exec.mxv(a, &frontier).ring(LorLand).into(&mut next)?;
        // Prune already-visited vertices and record fresh ones.
        let mut any = false;
        {
            let ns = next.as_mut_slice();
            for (i, v) in ns.iter_mut().enumerate() {
                if *v != 0.0 {
                    if levels[i] >= 0 {
                        *v = 0.0;
                    } else {
                        levels[i] = depth;
                        any = true;
                    }
                }
            }
        }
        if !any {
            break;
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    Ok(levels)
}

/// Single-source shortest paths by Bellman-Ford relaxation over the
/// tropical semiring: `d ← min(d, A ⊕.⊗ d)` with `⊕ = min`, `⊗ = +`.
/// Edge `i→j` with weight `w` is `A[j, i] = w`. Returns `+∞` for
/// unreachable vertices; errors on negative cycles.
pub fn sssp<E: Exec>(exec: Ctx<E>, a: &CsrMatrix<f64>, source: usize) -> Result<Vec<f64>> {
    check_dims("sssp", "adjacency must be square", a.nrows(), a.ncols())?;
    let n = a.nrows();
    if source >= n {
        return Err(GrbError::IndexOutOfBounds {
            index: source,
            len: n,
        });
    }
    let mut dist = Vector::<f64>::filled(n, f64::INFINITY);
    dist.as_mut_slice()[source] = 0.0;
    let mut relaxed = Vector::<f64>::zeros(n);
    for round in 0..n {
        exec.mxv(a, &dist).ring(MinPlus).into(&mut relaxed)?;
        // d ← min(d, relaxed) element-wise; track whether anything moved.
        let mut changed = false;
        {
            let ds = dist.as_mut_slice();
            let rs = relaxed.as_slice();
            for i in 0..n {
                if rs[i] < ds[i] {
                    ds[i] = rs[i];
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(dist.as_slice().to_vec());
        }
        if round == n - 1 && changed {
            return Err(GrbError::InvalidInput("negative cycle detected".into()));
        }
    }
    Ok(dist.as_slice().to_vec())
}

/// PageRank by power iteration: `r ← d·M·r + (1−d)/n` until the max
/// per-vertex change drops below `tol`. `m` must be column-stochastic
/// (`M[j, i] = 1/outdeg(i)` for each edge `i→j`). Returns the rank vector
/// and the iteration count.
pub fn pagerank<E: Exec>(
    exec: Ctx<E>,
    m: &CsrMatrix<f64>,
    damping: f64,
    tol: f64,
    max_iters: usize,
) -> Result<(Vector<f64>, usize)> {
    check_dims(
        "pagerank",
        "transition must be square",
        m.nrows(),
        m.ncols(),
    )?;
    if !(0.0..1.0).contains(&damping) {
        return Err(GrbError::InvalidInput(format!(
            "damping {damping} outside [0, 1)"
        )));
    }
    let n = m.nrows();
    if n == 0 {
        return Ok((Vector::zeros(0), 0));
    }
    let teleport = Vector::filled(n, (1.0 - damping) / n as f64);
    let mut rank = Vector::filled(n, 1.0 / n as f64);
    let mut next = Vector::zeros(n);
    for iter in 1..=max_iters {
        exec.mxv(m, &rank).into(&mut next)?;
        let scaled = next.clone();
        exec.ewise(&scaled, &teleport)
            .scaled(damping, 1.0)
            .into(&mut next)?;
        // Convergence via the max-abs-difference monoid fold.
        let mut diff_vec = Vector::zeros(n);
        exec.ewise(&next, &rank)
            .scaled(1.0, -1.0)
            .into(&mut diff_vec)?;
        let diff_abs = Vector::from_dense(diff_vec.as_slice().iter().map(|v| v.abs()).collect());
        let diff = exec.reduce(&diff_abs).monoid(Max).compute()?;
        std::mem::swap(&mut rank, &mut next);
        if diff < tol {
            return Ok((rank, iter));
        }
    }
    Ok((rank, max_iters))
}

/// Number of triangles in an undirected graph via the Burkhardt formula
/// `tr(A³)/6`, computed as `Σ_i ⟨(A²)_i, A_i⟩ / 6` with one `mxm` and an
/// element-wise dot — a staple GraphBLAS benchmark kernel.
pub fn triangle_count<E: Exec>(exec: Ctx<E>, a: &CsrMatrix<f64>) -> Result<usize> {
    check_dims("tricount", "adjacency must be square", a.nrows(), a.ncols())?;
    let a2 = exec.mxm(a, a).compute()?;
    let mut total = 0.0;
    for r in 0..a.nrows() {
        let (cols_a, vals_a) = a.row(r);
        let (cols_b, vals_b) = a2.row(r);
        // Sparse dot of the two rows (both sorted).
        let (mut i, mut j) = (0, 0);
        while i < cols_a.len() && j < cols_b.len() {
            match cols_a[i].cmp(&cols_b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    total += vals_a[i] * vals_b[j];
                    i += 1;
                    j += 1;
                }
            }
        }
    }
    Ok((total / 6.0).round() as usize)
}

/// Sum of a vector's entries over `Plus` — convenience used by examples.
pub fn mass<E: Exec>(exec: Ctx<E>, x: &Vector<f64>) -> Result<f64> {
    let ones = Vector::filled(x.len(), 1.0);
    exec.dot(x, &ones).compute()
}

// Suppress an unused-import lint path: Monoid is used via bounds above.
const _: fn() -> f64 = <Plus as Monoid<f64>>::identity;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Sequential;
    use crate::context::ctx;

    /// Directed path 0→1→2→3 plus a shortcut 0→3 (weight 10).
    fn path_graph() -> CsrMatrix<f64> {
        // A[j, i] = w for edge i→j.
        CsrMatrix::from_triplets(4, 4, &[(1, 0, 1.0), (2, 1, 1.0), (3, 2, 1.0), (3, 0, 10.0)])
            .unwrap()
    }

    #[test]
    fn bfs_levels_on_path() {
        let a = path_graph();
        let levels = bfs_levels(ctx::<Sequential>(), &a, 0).unwrap();
        assert_eq!(
            levels,
            vec![0, 1, 2, 1],
            "vertex 3 reached in one hop via the shortcut"
        );
        let from2 = bfs_levels(ctx::<Sequential>(), &a, 2).unwrap();
        assert_eq!(from2, vec![-1, -1, 0, 1], "no back edges");
    }

    #[test]
    fn bfs_bad_source() {
        let a = path_graph();
        assert!(bfs_levels(ctx::<Sequential>(), &a, 99).is_err());
    }

    #[test]
    fn sssp_prefers_cheap_path() {
        let a = path_graph();
        let d = sssp(ctx::<Sequential>(), &a, 0).unwrap();
        assert_eq!(
            d,
            vec![0.0, 1.0, 2.0, 3.0],
            "3 hops of cost 1 beat the cost-10 shortcut"
        );
    }

    #[test]
    fn sssp_unreachable_is_infinite() {
        let a = CsrMatrix::from_triplets(3, 3, &[(1, 0, 2.0)]).unwrap();
        let d = sssp(ctx::<Sequential>(), &a, 0).unwrap();
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 2.0);
        assert_eq!(d[2], f64::INFINITY);
    }

    #[test]
    fn sssp_detects_negative_cycle() {
        let a = CsrMatrix::from_triplets(2, 2, &[(1, 0, -1.0), (0, 1, -1.0)]).unwrap();
        assert!(matches!(
            sssp(ctx::<Sequential>(), &a, 0),
            Err(GrbError::InvalidInput(_))
        ));
    }

    #[test]
    fn pagerank_mass_conserved_and_hub_wins() {
        // Star: everyone links to vertex 0; 0 links to 1.
        let n = 6;
        let mut edges = vec![(0usize, 1usize)];
        for v in 1..n {
            edges.push((v, 0));
        }
        let mut outdeg = vec![0usize; n];
        for &(s, _) in &edges {
            outdeg[s] += 1;
        }
        let trips: Vec<(usize, usize, f64)> = edges
            .iter()
            .map(|&(s, d)| (d, s, 1.0 / outdeg[s] as f64))
            .collect();
        let m = CsrMatrix::from_triplets(n, n, &trips).unwrap();
        let (rank, iters) = pagerank(ctx::<Sequential>(), &m, 0.85, 1e-12, 500).unwrap();
        assert!(iters < 500, "must converge");
        let total = mass(ctx::<Sequential>(), &rank).unwrap();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "probability mass conserved, got {total}"
        );
        let best = rank
            .as_slice()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 0, "the star center ranks first");
    }

    #[test]
    fn pagerank_rejects_bad_damping() {
        let m = CsrMatrix::<f64>::from_triplets(1, 1, &[(0, 0, 1.0)]).unwrap();
        assert!(pagerank(ctx::<Sequential>(), &m, 1.5, 1e-6, 10).is_err());
    }

    #[test]
    fn triangle_count_k4_and_triangle() {
        // One triangle.
        let tri = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (0, 2, 1.0),
                (2, 0, 1.0),
            ],
        )
        .unwrap();
        assert_eq!(triangle_count(ctx::<Sequential>(), &tri).unwrap(), 1);

        // K4 has C(4,3) = 4 triangles.
        let mut e = Vec::new();
        for i in 0..4usize {
            for j in 0..4usize {
                if i != j {
                    e.push((i, j, 1.0));
                }
            }
        }
        let k4 = CsrMatrix::from_triplets(4, 4, &e).unwrap();
        assert_eq!(triangle_count(ctx::<Sequential>(), &k4).unwrap(), 4);

        // Triangle-free square.
        let sq = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (3, 0, 1.0),
                (0, 3, 1.0),
            ],
        )
        .unwrap();
        assert_eq!(triangle_count(ctx::<Sequential>(), &sq).unwrap(), 0);
    }

    #[test]
    fn bfs_on_hpcg_style_grid_matches_manhattan_like_metric() {
        // On a 27-point-stencil graph, BFS level = Chebyshev distance.
        let n = 4usize;
        let idx = |x: usize, y: usize| x + n * y;
        let mut trips = Vec::new();
        for y in 0..n {
            for x in 0..n {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let (xx, yy) = (x as i64 + dx, y as i64 + dy);
                        if (0..n as i64).contains(&xx) && (0..n as i64).contains(&yy) {
                            trips.push((idx(xx as usize, yy as usize), idx(x, y), 1.0));
                        }
                    }
                }
            }
        }
        let a = CsrMatrix::from_triplets(n * n, n * n, &trips).unwrap();
        let levels = bfs_levels(ctx::<Sequential>(), &a, idx(0, 0)).unwrap();
        for y in 0..n {
            for x in 0..n {
                assert_eq!(
                    levels[idx(x, y)],
                    x.max(y) as i64,
                    "Chebyshev distance at ({x},{y})"
                );
            }
        }
    }
}
