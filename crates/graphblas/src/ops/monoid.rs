//! Monoids: associative binary operators with an identity element.
//!
//! Reductions ([`crate::reduce`], the additive part of [`crate::mxv`]) fold
//! over a monoid; the identity is what empty rows and masked-out elements
//! contribute. Associativity + identity is exactly what lets the parallel
//! backend split a fold into per-chunk partial folds — the algebraic
//! "performance semantics" the paper's §II-H describes.

use super::binary::{BinaryOp, Land, Lor, Max, Min, Plus, Times};
use super::scalar::Scalar;

/// A [`BinaryOp`] that is associative and has an identity element in `T`.
///
/// # Contract
///
/// `apply` must be associative and `apply(identity(), x) == x == apply(x,
/// identity())` for all `x`. The parallel backend relies on this to
/// re-associate folds; property tests in `tests/algebra.rs` check it on the
/// provided implementations.
pub trait Monoid<T>: BinaryOp<T> {
    /// The identity element of the operator.
    fn identity() -> T;
}

impl<T: Scalar> Monoid<T> for Plus {
    #[inline(always)]
    fn identity() -> T {
        T::ZERO
    }
}

impl<T: Scalar> Monoid<T> for Times {
    #[inline(always)]
    fn identity() -> T {
        T::ONE
    }
}

impl<T: Scalar> Monoid<T> for Min {
    #[inline(always)]
    fn identity() -> T {
        T::MAX_VALUE
    }
}

impl<T: Scalar> Monoid<T> for Max {
    #[inline(always)]
    fn identity() -> T {
        T::MIN_VALUE
    }
}

impl<T: Scalar> Monoid<T> for Lor {
    #[inline(always)]
    fn identity() -> T {
        T::ZERO
    }
}

impl<T: Scalar> Monoid<T> for Land {
    #[inline(always)]
    fn identity() -> T {
        T::ONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_identity<M: Monoid<f64>>(samples: &[f64]) -> bool {
        samples
            .iter()
            .all(|&x| M::apply(M::identity(), x) == x && M::apply(x, M::identity()) == x)
    }

    #[test]
    fn identities_hold_f64() {
        let samples = [-3.5, -1.0, 0.0, 0.25, 7.0];
        assert!(is_identity::<Plus>(&samples));
        assert!(is_identity::<Times>(&samples));
        assert!(is_identity::<Min>(&samples));
        assert!(is_identity::<Max>(&samples));
    }

    #[test]
    fn identities_hold_i32() {
        for x in [i32::MIN, -7, 0, 3, i32::MAX] {
            assert_eq!(
                <Plus as BinaryOp<i32>>::apply(<Plus as Monoid<i32>>::identity(), x),
                x
            );
            assert_eq!(
                <Min as BinaryOp<i32>>::apply(<Min as Monoid<i32>>::identity(), x),
                x
            );
            assert_eq!(
                <Max as BinaryOp<i32>>::apply(<Max as Monoid<i32>>::identity(), x),
                x
            );
        }
    }

    #[test]
    fn logical_monoids() {
        assert!(!<Lor as Monoid<bool>>::identity());
        assert!(<Land as Monoid<bool>>::identity());
        assert_eq!(<Lor as Monoid<f64>>::identity(), 0.0);
        assert_eq!(<Land as Monoid<f64>>::identity(), 1.0);
    }
}
