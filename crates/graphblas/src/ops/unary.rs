//! Unary operators as zero-sized types, used by [`crate::apply`].

use super::scalar::Scalar;

/// A unary operator `T → T`.
pub trait UnaryOp<T>: Copy + Default + Send + Sync + 'static {
    /// Applies the operator.
    fn apply(a: T) -> T;
}

/// The identity function.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Identity;

/// Additive inverse (`-a`; on unsigned domains, `0 - a` wrapping).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AdditiveInverse;

/// Multiplicative inverse (`1 / a`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MultiplicativeInverse;

/// Absolute value.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Abs;

impl<T: Scalar> UnaryOp<T> for Identity {
    #[inline(always)]
    fn apply(a: T) -> T {
        a
    }
}

impl<T: Scalar> UnaryOp<T> for AdditiveInverse {
    #[inline(always)]
    fn apply(a: T) -> T {
        T::ZERO.sub(a)
    }
}

impl<T: Scalar> UnaryOp<T> for MultiplicativeInverse {
    #[inline(always)]
    fn apply(a: T) -> T {
        T::ONE.div(a)
    }
}

impl<T: Scalar> UnaryOp<T> for Abs {
    #[inline(always)]
    fn apply(a: T) -> T {
        a.abs_of()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity() {
        assert_eq!(<Identity as UnaryOp<f64>>::apply(3.5), 3.5);
    }

    #[test]
    fn additive_inverse() {
        assert_eq!(<AdditiveInverse as UnaryOp<f64>>::apply(3.5), -3.5);
        assert_eq!(<AdditiveInverse as UnaryOp<i32>>::apply(-4), 4);
    }

    #[test]
    fn multiplicative_inverse() {
        assert_eq!(<MultiplicativeInverse as UnaryOp<f64>>::apply(4.0), 0.25);
    }

    #[test]
    fn abs() {
        assert_eq!(<Abs as UnaryOp<f64>>::apply(-2.0), 2.0);
        assert_eq!(<Abs as UnaryOp<i64>>::apply(-2), 2);
    }
}
