//! Binary operators as zero-sized types.
//!
//! Each operator is a unit struct implementing [`BinaryOp<T>`] for every
//! [`Scalar`] domain where it makes sense. The set follows the GraphBLAS C
//! API's standard operator list (§ 3.5 of the spec), restricted to the ones
//! sparse solvers and graph algorithms actually use.

use super::scalar::Scalar;

/// A binary operator `T × T → T`.
///
/// Implementors are zero-sized; `apply` is a static dispatch that inlines to
/// the raw arithmetic after monomorphization. This is the Rust rendering of
/// ALP/GraphBLAS's template operators (paper §IV).
pub trait BinaryOp<T>: Copy + Default + Send + Sync + 'static {
    /// Applies the operator.
    fn apply(a: T, b: T) -> T;
}

/// Addition (`a + b`; logical or on `bool`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Plus;

/// Subtraction (`a - b`; xor on `bool`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Minus;

/// Multiplication (`a * b`; logical and on `bool`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Times;

/// Division (`a / b`; integer division absorbs division by zero to zero).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Divide;

/// Minimum of the operands.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Min;

/// Maximum of the operands.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Max;

/// Returns the first operand, discarding the second.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct First;

/// Returns the second operand, discarding the first.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Second;

/// Logical or over the domain's truthiness (`a ≠ 0 ∨ b ≠ 0`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Lor;

/// Logical and over the domain's truthiness (`a ≠ 0 ∧ b ≠ 0`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Land;

impl<T: Scalar> BinaryOp<T> for Plus {
    #[inline(always)]
    fn apply(a: T, b: T) -> T {
        a.add(b)
    }
}

impl<T: Scalar> BinaryOp<T> for Minus {
    #[inline(always)]
    fn apply(a: T, b: T) -> T {
        a.sub(b)
    }
}

impl<T: Scalar> BinaryOp<T> for Times {
    #[inline(always)]
    fn apply(a: T, b: T) -> T {
        a.mul(b)
    }
}

impl<T: Scalar> BinaryOp<T> for Divide {
    #[inline(always)]
    fn apply(a: T, b: T) -> T {
        a.div(b)
    }
}

impl<T: Scalar> BinaryOp<T> for Min {
    #[inline(always)]
    fn apply(a: T, b: T) -> T {
        a.min_of(b)
    }
}

impl<T: Scalar> BinaryOp<T> for Max {
    #[inline(always)]
    fn apply(a: T, b: T) -> T {
        a.max_of(b)
    }
}

impl<T: Scalar> BinaryOp<T> for First {
    #[inline(always)]
    fn apply(a: T, _b: T) -> T {
        a
    }
}

impl<T: Scalar> BinaryOp<T> for Second {
    #[inline(always)]
    fn apply(_a: T, b: T) -> T {
        b
    }
}

impl<T: Scalar> BinaryOp<T> for Lor {
    #[inline(always)]
    fn apply(a: T, b: T) -> T {
        if a != T::ZERO || b != T::ZERO {
            T::ONE
        } else {
            T::ZERO
        }
    }
}

impl<T: Scalar> BinaryOp<T> for Land {
    #[inline(always)]
    fn apply(a: T, b: T) -> T {
        if a != T::ZERO && b != T::ZERO {
            T::ONE
        } else {
            T::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ops_f64() {
        assert_eq!(<Plus as BinaryOp<f64>>::apply(2.0, 3.0), 5.0);
        assert_eq!(<Minus as BinaryOp<f64>>::apply(2.0, 3.0), -1.0);
        assert_eq!(<Times as BinaryOp<f64>>::apply(2.0, 3.0), 6.0);
        assert_eq!(<Divide as BinaryOp<f64>>::apply(3.0, 2.0), 1.5);
    }

    #[test]
    fn selection_ops() {
        assert_eq!(<Min as BinaryOp<i32>>::apply(2, 3), 2);
        assert_eq!(<Max as BinaryOp<i32>>::apply(2, 3), 3);
        assert_eq!(<First as BinaryOp<i32>>::apply(2, 3), 2);
        assert_eq!(<Second as BinaryOp<i32>>::apply(2, 3), 3);
    }

    #[test]
    fn logical_ops_over_numeric_domain() {
        assert_eq!(<Lor as BinaryOp<f64>>::apply(0.0, 0.0), 0.0);
        assert_eq!(<Lor as BinaryOp<f64>>::apply(2.5, 0.0), 1.0);
        assert_eq!(<Land as BinaryOp<f64>>::apply(2.5, 0.0), 0.0);
        assert_eq!(<Land as BinaryOp<f64>>::apply(2.5, -1.0), 1.0);
    }

    #[test]
    fn logical_ops_over_bool() {
        assert!(<Lor as BinaryOp<bool>>::apply(true, false));
        assert!(!<Land as BinaryOp<bool>>::apply(true, false));
    }
}
