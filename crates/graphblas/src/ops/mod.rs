//! Algebraic structures: the heart of the GraphBLAS programming model.
//!
//! GraphBLAS expresses every computation over an explicit algebraic
//! structure. This module provides:
//!
//! * [`scalar::Scalar`] — the numeric domain trait (what ALP calls the value
//!   type), giving each type its `0`, `1`, bounds and basic arithmetic;
//! * [`binary::BinaryOp`] / [`unary::UnaryOp`] — operators as zero-sized
//!   types so they monomorphize away entirely;
//! * [`monoid::Monoid`] — a binary operator plus its identity, the structure
//!   reductions fold over;
//! * [`semiring::Semiring`] — an additive monoid paired with a
//!   multiplicative operator, the structure `mxv`/`mxm` compute over.
//!
//! All operator types are `Copy + Default` ZSTs: passing them by value (as in
//! the paper's Listing 3, where a `Ring` object is threaded through) costs
//! nothing after monomorphization — verified by the `zst_sizes` test below.

pub mod accum;
pub mod binary;
pub mod monoid;
pub mod scalar;
pub mod semiring;
pub mod unary;

#[cfg(test)]
mod tests {
    use super::binary::*;
    use super::semiring::*;

    #[test]
    fn zst_sizes() {
        assert_eq!(std::mem::size_of::<Plus>(), 0);
        assert_eq!(std::mem::size_of::<Times>(), 0);
        assert_eq!(std::mem::size_of::<Min>(), 0);
        assert_eq!(std::mem::size_of::<PlusTimes>(), 0);
        assert_eq!(std::mem::size_of::<MinPlus>(), 0);
    }
}
