//! Semirings: the algebraic structure of `mxv`, `vxm` and `mxm`.
//!
//! A semiring pairs an additive [`Monoid`] with a multiplicative
//! [`BinaryOp`]. A sparse matrix-vector product over semiring `(⊕, ⊗)`
//! computes `y_i = ⊕_j A_ij ⊗ x_j`, skipping absent entries — which is why
//! the additive identity also serves as the implicit value of absent
//! nonzeroes.
//!
//! The standard numeric semiring [`PlusTimes`] drives all of HPCG; the
//! tropical [`MinPlus`] and [`MaxTimes`] semirings are provided for graph
//! workloads (shortest paths, widest paths) and to exercise genericity in
//! tests.

use super::binary::{BinaryOp, Max, Min, Plus, Times};
use super::monoid::Monoid;

/// An algebraic semiring over domain `T`: additive monoid + multiplicative op.
///
/// Like the operator types, implementations are zero-sized and passed by
/// value purely for API resemblance to the paper's `Ring` parameter
/// (Listing 3); after monomorphization they vanish.
pub trait Semiring<T>: Copy + Default + Send + Sync + 'static {
    /// The additive monoid (`⊕` and its identity).
    type Add: Monoid<T>;
    /// The multiplicative operator (`⊗`).
    type Mul: BinaryOp<T>;

    /// `a ⊕ b`.
    #[inline(always)]
    fn add(a: T, b: T) -> T {
        Self::Add::apply(a, b)
    }

    /// `a ⊗ b`.
    #[inline(always)]
    fn mul(a: T, b: T) -> T {
        Self::Mul::apply(a, b)
    }

    /// The additive identity — the implicit value of absent sparse entries.
    #[inline(always)]
    fn zero() -> T {
        Self::Add::identity()
    }
}

/// The conventional arithmetic semiring `(+, ×)`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PlusTimes;

impl<T> Semiring<T> for PlusTimes
where
    Plus: Monoid<T>,
    Times: BinaryOp<T>,
{
    type Add = Plus;
    type Mul = Times;
}

/// The tropical semiring `(min, +)`, used for shortest-path relaxations.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MinPlus;

impl<T> Semiring<T> for MinPlus
where
    Min: Monoid<T>,
    Plus: BinaryOp<T>,
{
    type Add = Min;
    type Mul = Plus;
}

/// The `(max, ×)` semiring, used for widest-path / reliability problems.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MaxTimes;

impl<T> Semiring<T> for MaxTimes
where
    Max: Monoid<T>,
    Times: BinaryOp<T>,
{
    type Add = Max;
    type Mul = Times;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_f64() {
        assert_eq!(<PlusTimes as Semiring<f64>>::add(2.0, 3.0), 5.0);
        assert_eq!(<PlusTimes as Semiring<f64>>::mul(2.0, 3.0), 6.0);
        assert_eq!(<PlusTimes as Semiring<f64>>::zero(), 0.0);
    }

    #[test]
    fn min_plus_is_tropical() {
        assert_eq!(<MinPlus as Semiring<f64>>::add(2.0, 3.0), 2.0);
        assert_eq!(<MinPlus as Semiring<f64>>::mul(2.0, 3.0), 5.0);
        assert_eq!(<MinPlus as Semiring<f64>>::zero(), f64::INFINITY);
    }

    #[test]
    fn max_times() {
        assert_eq!(<MaxTimes as Semiring<f64>>::add(2.0, 3.0), 3.0);
        assert_eq!(<MaxTimes as Semiring<f64>>::mul(2.0, 0.5), 1.0);
        assert_eq!(<MaxTimes as Semiring<f64>>::zero(), f64::NEG_INFINITY);
    }

    #[test]
    fn zero_annihilates_under_plus_times() {
        // 0 ⊗ x == 0 for the arithmetic semiring: required so skipped entries
        // and explicit zeros are interchangeable.
        for x in [-2.0f64, 0.0, 3.5] {
            assert_eq!(
                <PlusTimes as Semiring<f64>>::mul(<PlusTimes as Semiring<f64>>::zero(), x),
                0.0
            );
        }
    }
}
