//! Semirings: the algebraic structure of `mxv`, `vxm` and `mxm`.
//!
//! A semiring pairs an additive [`Monoid`] with a multiplicative
//! [`BinaryOp`]. A sparse matrix-vector product over semiring `(⊕, ⊗)`
//! computes `y_i = ⊕_j A_ij ⊗ x_j`, skipping absent entries — which is why
//! the additive identity also serves as the implicit value of absent
//! nonzeroes.
//!
//! The standard numeric semiring [`PlusTimes`] drives all of HPCG; the
//! tropical [`MinPlus`] and [`MaxTimes`] semirings are provided for graph
//! workloads (shortest paths, widest paths) and to exercise genericity in
//! tests.

use super::binary::{BinaryOp, Max, Min, Plus, Times};
use super::monoid::Monoid;

/// An algebraic semiring over domain `T`: additive monoid + multiplicative op.
///
/// Like the operator types, implementations are zero-sized and passed by
/// value purely for API resemblance to the paper's `Ring` parameter
/// (Listing 3); after monomorphization they vanish.
pub trait Semiring<T>: Copy + Default + Send + Sync + 'static {
    /// The additive monoid (`⊕` and its identity).
    type Add: Monoid<T>;
    /// The multiplicative operator (`⊗`).
    type Mul: BinaryOp<T>;

    /// `a ⊕ b`.
    #[inline(always)]
    fn add(a: T, b: T) -> T {
        Self::Add::apply(a, b)
    }

    /// `a ⊗ b`.
    #[inline(always)]
    fn mul(a: T, b: T) -> T {
        Self::Mul::apply(a, b)
    }

    /// The additive identity — the implicit value of absent sparse entries.
    #[inline(always)]
    fn zero() -> T {
        Self::Add::identity()
    }

    /// Whether the additive identity annihilates under `⊗` **bitwise**:
    /// `add(acc, mul(a, zero())) == acc` for every `a` the kernel may see.
    ///
    /// Push-mode sparse `mxv` skips matrix columns whose frontier entry is
    /// absent; those columns contribute `mul(a, zero())` in the dense sweep.
    /// Only when this flag is `true` is skipping them guaranteed to leave the
    /// result bit-identical to the dense kernel, so the direction-optimizing
    /// kernel falls back to pull mode for rings that leave it `false`
    /// (e.g. [`MaxTimes`], where `a × −∞` is `±∞`, not the identity).
    const ANNIHILATING_ZERO: bool = false;
}

/// The conventional arithmetic semiring `(+, ×)`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PlusTimes;

impl<T> Semiring<T> for PlusTimes
where
    Plus: Monoid<T>,
    Times: BinaryOp<T>,
{
    type Add = Plus;
    type Mul = Times;

    // `a × 0 == ±0` and IEEE-754 partial sums started from `+0.0` never
    // round to `-0.0`, so `acc + (a × 0) == acc` bitwise.
    const ANNIHILATING_ZERO: bool = true;
}

/// The tropical semiring `(min, +)`, used for shortest-path relaxations.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MinPlus;

impl<T> Semiring<T> for MinPlus
where
    Min: Monoid<T>,
    Plus: BinaryOp<T>,
{
    type Add = Min;
    type Mul = Plus;

    // `a + ∞ == ∞` and `min(acc, ∞)` keeps `acc` (the `min` operator
    // returns its left operand on ties and non-strict comparisons).
    const ANNIHILATING_ZERO: bool = true;
}

/// The `(max, ×)` semiring, used for widest-path / reliability problems.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MaxTimes;

impl<T> Semiring<T> for MaxTimes
where
    Max: Monoid<T>,
    Times: BinaryOp<T>,
{
    type Add = Max;
    type Mul = Times;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_f64() {
        assert_eq!(<PlusTimes as Semiring<f64>>::add(2.0, 3.0), 5.0);
        assert_eq!(<PlusTimes as Semiring<f64>>::mul(2.0, 3.0), 6.0);
        assert_eq!(<PlusTimes as Semiring<f64>>::zero(), 0.0);
    }

    #[test]
    fn min_plus_is_tropical() {
        assert_eq!(<MinPlus as Semiring<f64>>::add(2.0, 3.0), 2.0);
        assert_eq!(<MinPlus as Semiring<f64>>::mul(2.0, 3.0), 5.0);
        assert_eq!(<MinPlus as Semiring<f64>>::zero(), f64::INFINITY);
    }

    #[test]
    fn max_times() {
        assert_eq!(<MaxTimes as Semiring<f64>>::add(2.0, 3.0), 3.0);
        assert_eq!(<MaxTimes as Semiring<f64>>::mul(2.0, 0.5), 1.0);
        assert_eq!(<MaxTimes as Semiring<f64>>::zero(), f64::NEG_INFINITY);
    }

    #[test]
    fn annihilating_zero_flags_match_the_rings() {
        // A ring may declare ANNIHILATING_ZERO only if add(acc, mul(a,
        // zero())) == acc *bitwise* for every a and every acc reachable
        // by summing from zero() — the property push mode relies on to
        // skip absent frontier entries. (−0.0 would violate it for
        // PlusTimes, but IEEE sums seeded at +0.0 can never produce
        // −0.0, so it is not a reachable accumulator.)
        fn absorbed<R: Semiring<f64>>(acc: f64, a: f64) -> bool {
            R::add(acc, R::mul(a, R::zero())).to_bits() == acc.to_bits()
        }
        let samples = [-7.5, -0.0, 0.0, 1.0 / 3.0, 4.0e200];
        let accs = [-7.5, 0.0, 1.0 / 3.0, 4.0e200, f64::INFINITY];
        for &acc in &accs {
            for &a in &samples {
                assert_eq!(
                    absorbed::<PlusTimes>(acc, a),
                    <PlusTimes as Semiring<f64>>::ANNIHILATING_ZERO,
                    "PlusTimes acc={acc} a={a}"
                );
                assert_eq!(
                    absorbed::<MinPlus>(acc, a),
                    <MinPlus as Semiring<f64>>::ANNIHILATING_ZERO,
                    "MinPlus acc={acc} a={a}"
                );
            }
        }
        // max(acc, −2 × −∞) = +∞, not acc: push mode must not skip
        // entries under MaxTimes, and the flag says so.
        assert_eq!(
            absorbed::<MaxTimes>(1.0, -2.0),
            <MaxTimes as Semiring<f64>>::ANNIHILATING_ZERO
        );
        assert!(!absorbed::<MaxTimes>(1.0, -2.0));
    }

    #[test]
    fn zero_annihilates_under_plus_times() {
        // 0 ⊗ x == 0 for the arithmetic semiring: required so skipped entries
        // and explicit zeros are interchangeable.
        for x in [-2.0f64, 0.0, 3.5] {
            assert_eq!(
                <PlusTimes as Semiring<f64>>::mul(<PlusTimes as Semiring<f64>>::zero(), x),
                0.0
            );
        }
    }
}
