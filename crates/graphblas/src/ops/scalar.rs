//! The numeric domain trait for container values.
//!
//! GraphBLAS operations are generic over the value type. [`Scalar`] captures
//! the minimal arithmetic the standard operators need, with implementations
//! for the types HPCG and common graph algorithms use. It deliberately stays
//! small: anything operator-specific (identity of `min`, etc.) lives on the
//! operator traits, keeping this trait implementable for exotic domains.

/// A value type usable inside GraphBLAS containers and operators.
///
/// `bool` participates too (for masks and logical semirings); its "addition"
/// is logical or and its "multiplication" logical and.
pub trait Scalar: Copy + PartialEq + PartialOrd + Send + Sync + std::fmt::Debug + 'static {
    /// Additive identity (`0`, or `false`).
    const ZERO: Self;
    /// Multiplicative identity (`1`, or `true`).
    const ONE: Self;
    /// Least value of the domain (identity of `max`).
    const MIN_VALUE: Self;
    /// Greatest value of the domain (identity of `min`).
    const MAX_VALUE: Self;

    /// Domain addition. For `bool`: logical or.
    fn add(self, rhs: Self) -> Self;
    /// Domain subtraction. For `bool`: logical xor (the additive inverse in GF(2)).
    fn sub(self, rhs: Self) -> Self;
    /// Domain multiplication. For `bool`: logical and.
    fn mul(self, rhs: Self) -> Self;
    /// Domain division. For integers: truncating; for `bool`: identity on the lhs.
    fn div(self, rhs: Self) -> Self;
    /// The smaller of the two values.
    fn min_of(self, rhs: Self) -> Self;
    /// The larger of the two values.
    fn max_of(self, rhs: Self) -> Self;
    /// Absolute value (identity for unsigned domains and `bool`).
    fn abs_of(self) -> Self;
}

macro_rules! impl_scalar_float {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const MIN_VALUE: Self = <$t>::NEG_INFINITY;
            const MAX_VALUE: Self = <$t>::INFINITY;

            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                self + rhs
            }
            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                self - rhs
            }
            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                self * rhs
            }
            #[inline(always)]
            fn div(self, rhs: Self) -> Self {
                self / rhs
            }
            #[inline(always)]
            fn min_of(self, rhs: Self) -> Self {
                if rhs < self {
                    rhs
                } else {
                    self
                }
            }
            #[inline(always)]
            fn max_of(self, rhs: Self) -> Self {
                if rhs > self {
                    rhs
                } else {
                    self
                }
            }
            #[inline(always)]
            fn abs_of(self) -> Self {
                self.abs()
            }
        }
    };
}

macro_rules! impl_scalar_int {
    ($t:ty, $abs:expr) => {
        impl Scalar for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;

            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                self.wrapping_add(rhs)
            }
            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                self.wrapping_sub(rhs)
            }
            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                self.wrapping_mul(rhs)
            }
            #[inline(always)]
            fn div(self, rhs: Self) -> Self {
                if rhs == 0 {
                    0
                } else {
                    self.wrapping_div(rhs)
                }
            }
            #[inline(always)]
            fn min_of(self, rhs: Self) -> Self {
                std::cmp::min(self, rhs)
            }
            #[inline(always)]
            fn max_of(self, rhs: Self) -> Self {
                std::cmp::max(self, rhs)
            }
            #[inline(always)]
            fn abs_of(self) -> Self {
                ($abs)(self)
            }
        }
    };
}

impl_scalar_float!(f64);
impl_scalar_float!(f32);
impl_scalar_int!(i64, |v: i64| v.wrapping_abs());
impl_scalar_int!(i32, |v: i32| v.wrapping_abs());
impl_scalar_int!(u64, |v: u64| v);
impl_scalar_int!(u32, |v: u32| v);
impl_scalar_int!(usize, |v: usize| v);
impl_scalar_int!(isize, |v: isize| v.wrapping_abs());

impl Scalar for bool {
    const ZERO: Self = false;
    const ONE: Self = true;
    const MIN_VALUE: Self = false;
    const MAX_VALUE: Self = true;

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        self || rhs
    }
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        self ^ rhs
    }
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        self && rhs
    }
    #[inline(always)]
    fn div(self, _rhs: Self) -> Self {
        self
    }
    #[inline(always)]
    fn min_of(self, rhs: Self) -> Self {
        self && rhs
    }
    #[inline(always)]
    fn max_of(self, rhs: Self) -> Self {
        self || rhs
    }
    #[inline(always)]
    fn abs_of(self) -> Self {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_identities() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f64::ONE, 1.0);
        assert_eq!(f64::MAX_VALUE, f64::INFINITY);
        assert_eq!(2.0f64.add(3.0), 5.0);
        assert_eq!(2.0f64.mul(3.0), 6.0);
        assert_eq!(6.0f64.div(3.0), 2.0);
        assert_eq!((-2.5f64).abs_of(), 2.5);
    }

    #[test]
    fn f64_min_max_keep_lhs_on_incomparable() {
        // min/max use strict comparison: ties and incomparables (NaN) keep the lhs.
        assert_eq!(1.0f64.min_of(2.0), 1.0);
        assert_eq!(1.0f64.max_of(2.0), 2.0);
        assert!(f64::NAN.min_of(1.0).is_nan());
        assert!(f64::NAN.max_of(1.0).is_nan());
        assert_eq!(1.0f64.min_of(f64::NAN), 1.0);
    }

    #[test]
    fn int_wrapping_semantics() {
        assert_eq!(i32::MAX.add(1), i32::MIN);
        assert_eq!(
            5i64.div(0),
            0,
            "division by zero is absorbed to zero, not a panic"
        );
        assert_eq!((-7i32).abs_of(), 7);
        assert_eq!(7u32.abs_of(), 7);
    }

    #[test]
    fn bool_gf2_like() {
        assert!(true.add(false));
        assert!(!true.sub(true));
        assert!(!true.mul(false));
        assert!(!true.min_of(false));
        assert!(true.max_of(false));
    }

    #[test]
    fn min_max_identities_absorb() {
        for v in [-3.0f64, 0.0, 7.5] {
            assert_eq!(v.min_of(f64::MAX_VALUE), v);
            assert_eq!(v.max_of(f64::MIN_VALUE), v);
        }
        for v in [i32::MIN, -1, 0, 42, i32::MAX] {
            assert_eq!(v.min_of(i32::MAX_VALUE), v);
            assert_eq!(v.max_of(i32::MIN_VALUE), v);
        }
    }
}
