//! Output accumulation modes — the GraphBLAS `accum` parameter as a
//! zero-sized strategy type.
//!
//! Every primitive that writes a vector does so through an [`AccumMode`]:
//! [`NoAccum`] overwrites the selected output slots (the GraphBLAS
//! "no accumulator" case) and [`AccumWith`]`<Op>` combines the freshly
//! computed value with the previous content through `Op` (`z = z ⊙ t`).
//! Like the operator types, both are zero-sized: after monomorphization the
//! kernels contain exactly a store or exactly the fused read-modify-write,
//! with no runtime flag. This is what lets the builder API collapse the
//! historical `mxv`/`mxv_accum` and `ewise`/`ewise_mul_add` twin entry
//! points into one code path.

use super::binary::BinaryOp;
use std::marker::PhantomData;

mod sealed {
    pub trait Sealed {}
}

/// How a kernel combines a computed value with the output slot's previous
/// content. Sealed: the two provided modes are the only lawful ones.
pub trait AccumMode<T>: Copy + Default + Send + Sync + 'static + sealed::Sealed {
    /// `true` when the mode reads the previous slot value.
    const ACCUMULATES: bool;

    /// Stores `value` into `slot` under this mode.
    fn store(slot: &mut T, value: T);
}

/// Overwrite the output slot (`z = t`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NoAccum;

impl sealed::Sealed for NoAccum {}

impl<T> AccumMode<T> for NoAccum {
    const ACCUMULATES: bool = false;

    #[inline(always)]
    fn store(slot: &mut T, value: T) {
        *slot = value;
    }
}

/// Combine with the previous content through `Op` (`z = Op(z, t)`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AccumWith<Op>(PhantomData<Op>);

impl<Op> sealed::Sealed for AccumWith<Op> {}

impl<T: Copy, Op: BinaryOp<T>> AccumMode<T> for AccumWith<Op> {
    const ACCUMULATES: bool = true;

    #[inline(always)]
    fn store(slot: &mut T, value: T) {
        *slot = Op::apply(*slot, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::binary::{Minus, Plus};

    #[test]
    fn no_accum_overwrites() {
        let mut slot = 7.0;
        <NoAccum as AccumMode<f64>>::store(&mut slot, 2.0);
        assert_eq!(slot, 2.0);
        let accumulates = <NoAccum as AccumMode<f64>>::ACCUMULATES;
        assert!(!accumulates);
    }

    #[test]
    fn accum_with_combines() {
        let mut slot = 7.0;
        <AccumWith<Plus> as AccumMode<f64>>::store(&mut slot, 2.0);
        assert_eq!(slot, 9.0);
        // Non-commutative ops see the previous content on the left.
        let mut slot = 7.0;
        <AccumWith<Minus> as AccumMode<f64>>::store(&mut slot, 2.0);
        assert_eq!(slot, 5.0);
        let accumulates = <AccumWith<Plus> as AccumMode<f64>>::ACCUMULATES;
        assert!(accumulates);
    }
}
