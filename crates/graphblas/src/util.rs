//! Internal utilities shared by the execution kernels.

use std::cell::UnsafeCell;

/// A `Sync` wrapper around a mutable slice permitting concurrent writes to
/// *disjoint* indices.
///
/// This is the standard HPC idiom for scatter-style parallel kernels (the
/// rayon equivalent of OpenMP's `parallel for` over an output array): masked
/// updates and colored Gauss-Seidel sweeps write each output index from at
/// most one thread, which the caller guarantees by construction (mask
/// indices are strictly increasing, colors partition the index set).
///
/// # Safety
///
/// Callers of [`UnsafeSlice::write`] / [`UnsafeSlice::get_mut`] must ensure
/// no index is accessed from two threads simultaneously.
pub(crate) struct UnsafeSlice<'a, T> {
    slice: &'a [UnsafeCell<T>],
}

unsafe impl<T: Send + Sync> Sync for UnsafeSlice<'_, T> {}
unsafe impl<T: Send + Sync> Send for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wraps a mutable slice for disjoint concurrent access.
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `&mut [T]` and `&[UnsafeCell<T>]` have identical layout and
        // we hold the unique borrow for 'a.
        let ptr = slice as *mut [T] as *const [UnsafeCell<T>];
        Self {
            slice: unsafe { &*ptr },
        }
    }

    /// Number of elements.
    #[allow(dead_code)]
    pub(crate) fn len(&self) -> usize {
        self.slice.len()
    }

    /// Writes `value` at `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and not concurrently accessed by another thread.
    #[inline(always)]
    pub(crate) unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.slice.len());
        unsafe { *self.slice.get_unchecked(i).get() = value }
    }

    /// Returns a mutable reference to element `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and not concurrently accessed by another thread.
    #[inline(always)]
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.slice.len());
        unsafe { &mut *self.slice.get_unchecked(i).get() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_writes_land() {
        let mut data = vec![0u64; 16];
        {
            let s = UnsafeSlice::new(&mut data);
            // Disjoint single-threaded writes are trivially safe.
            for i in 0..16 {
                unsafe { s.write(i, i as u64 * 2) };
            }
        }
        assert_eq!(data[3], 6);
        assert_eq!(data[15], 30);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let mut data = vec![0usize; 1024];
        {
            let s = UnsafeSlice::new(&mut data);
            std::thread::scope(|scope| {
                let s = &s;
                for t in 0..4 {
                    scope.spawn(move || {
                        for i in (t * 256)..((t + 1) * 256) {
                            unsafe { s.write(i, i + 1) };
                        }
                    });
                }
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i + 1));
    }
}
