//! A minimal `--key value` flag parser for the harness binaries.
//!
//! The harnesses take a handful of numeric knobs (problem size, iteration
//! count, node list) plus the runtime backend selector; a tiny parser
//! keeps the binaries self-contained.

use graphblas::BackendKind;
use std::collections::BTreeMap;

/// Parsed command-line flags: `--key value` pairs plus positionals.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    positionals: Vec<String>,
}

impl Args {
    /// Parses the process arguments (skipping the binary name).
    pub fn from_env() -> Args {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable entry point).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Args {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if let Some((k, v)) = key.split_once('=') {
                    out.flags.insert(k.to_string(), v.to_string());
                } else if iter.peek().map(|n| !n.starts_with("--")).unwrap_or(false) {
                    let v = iter.next().unwrap();
                    out.flags.insert(key.to_string(), v);
                } else {
                    out.flags.insert(key.to_string(), "true".to_string());
                }
            } else {
                out.positionals.push(arg);
            }
        }
        out
    }

    /// A `usize` flag with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// An `f64` flag with default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A boolean flag (`--foo` or `--foo true`).
    pub fn get_bool(&self, key: &str) -> bool {
        matches!(
            self.flags.get(key).map(String::as_str),
            Some("true") | Some("1")
        )
    }

    /// A comma-separated list of `usize` (`--nodes 2,3,4`).
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.flags.get(key) {
            None => default.to_vec(),
            Some(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        }
    }

    /// Raw string flag.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// The execution backend: `--backend seq|par|dist[:<nodes>]`, falling
    /// back to the `GRB_BACKEND` environment variable, then `default`. An
    /// unknown `--backend` spelling warns and uses the default rather than
    /// aborting a long benchmark run; a set-but-invalid `GRB_BACKEND` is a
    /// hard error (the environment silently steering a run onto the wrong
    /// backend is worse than stopping).
    ///
    /// A bare `--backend dist` combines with a `--nodes N` flag into
    /// `dist:N` (so `--backend dist --nodes 8` reads naturally next to
    /// `--backend dist:8`); an explicit `dist:<count>` wins over `--nodes`.
    pub fn get_backend(&self, default: BackendKind) -> BackendKind {
        match self.get_str("backend") {
            Some(s) => {
                // Fold a bare `dist --nodes N` into one `dist:N` spec up
                // front: registering a cluster is a side effect of parsing
                // a dist spelling, so parse the final shape exactly once.
                let trimmed = s.trim().to_ascii_lowercase();
                let spec = match self.get_str("nodes") {
                    Some(n) if trimmed == "dist" || trimmed == "distributed" => {
                        format!("{trimmed}:{}", n.trim())
                    }
                    _ => s.to_string(),
                };
                BackendKind::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("warning: {e}, using {default}");
                    default
                })
            }
            None => match BackendKind::from_env() {
                Ok(kind) => kind.unwrap_or(default),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn key_value_pairs() {
        let a = parse("--size 32 --iters 10");
        assert_eq!(a.get_usize("size", 0), 32);
        assert_eq!(a.get_usize("iters", 0), 10);
        assert_eq!(a.get_usize("missing", 7), 7);
    }

    #[test]
    fn equals_form_and_bools() {
        let a = parse("--size=16 --verbose --x");
        assert_eq!(a.get_usize("size", 0), 16);
        assert!(a.get_bool("verbose"));
        assert!(a.get_bool("x"));
        assert!(!a.get_bool("missing"));
    }

    #[test]
    fn backend_flag_parses() {
        assert_eq!(
            parse("--backend seq").get_backend(BackendKind::Parallel),
            BackendKind::Sequential
        );
        assert_eq!(
            parse("--backend par").get_backend(BackendKind::Sequential),
            BackendKind::Parallel
        );
        assert_eq!(
            parse("--backend bogus").get_backend(BackendKind::Parallel),
            BackendKind::Parallel
        );
        // Without the flag (and without GRB_BACKEND set) the default wins.
        if std::env::var("GRB_BACKEND").is_err() {
            assert_eq!(
                parse("").get_backend(BackendKind::Sequential),
                BackendKind::Sequential
            );
        }
    }

    #[test]
    fn dist_backend_flag_and_nodes() {
        match parse("--backend dist:3").get_backend(BackendKind::Sequential) {
            BackendKind::Dist(d) => assert_eq!(d.nodes(), 3),
            other => panic!("expected dist, got {other}"),
        }
        // --nodes resizes the cluster of a dist backend...
        match parse("--backend dist --nodes 8").get_backend(BackendKind::Sequential) {
            BackendKind::Dist(d) => assert_eq!(d.nodes(), 8),
            other => panic!("expected dist, got {other}"),
        }
        // ...and is ignored for shared-memory backends.
        assert_eq!(
            parse("--backend par --nodes 8").get_backend(BackendKind::Sequential),
            BackendKind::Parallel
        );
    }

    #[test]
    fn lists_and_floats() {
        let a = parse("--nodes 2,3,5 --g 0.5");
        assert_eq!(a.get_usize_list("nodes", &[1]), vec![2, 3, 5]);
        assert_eq!(a.get_usize_list("other", &[1, 2]), vec![1, 2]);
        assert_eq!(a.get_f64("g", 0.0), 0.5);
    }
}
