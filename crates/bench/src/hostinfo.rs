//! Host introspection for the Table II analogue.
//!
//! The paper's Table II lists the experimental machines. We cannot
//! reproduce their hardware, so `table2_machine` prints what *this* run
//! executes on (plus the paper's two machines for reference), read from
//! `/proc` and `sysfs` where available.

use std::fs;

/// What we can learn about the host.
#[derive(Clone, Debug, Default)]
pub struct HostInfo {
    /// CPU model string.
    pub cpu_model: String,
    /// Logical CPUs visible to the process.
    pub logical_cpus: usize,
    /// Total memory in GiB.
    pub mem_gib: f64,
    /// L3 cache size string, if exposed.
    pub l3_cache: String,
    /// OS description.
    pub os: String,
}

impl HostInfo {
    /// Gathers host information (best-effort; missing fields stay empty).
    pub fn gather() -> HostInfo {
        let mut info = HostInfo {
            logical_cpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ..Default::default()
        };
        if let Ok(cpuinfo) = fs::read_to_string("/proc/cpuinfo") {
            for line in cpuinfo.lines() {
                if let Some(v) = line.strip_prefix("model name") {
                    info.cpu_model = v.trim_start_matches([' ', '\t', ':']).to_string();
                    break;
                }
            }
        }
        if let Ok(meminfo) = fs::read_to_string("/proc/meminfo") {
            for line in meminfo.lines() {
                if let Some(v) = line.strip_prefix("MemTotal:") {
                    let kb: f64 = v
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0.0);
                    info.mem_gib = kb / 1024.0 / 1024.0;
                    break;
                }
            }
        }
        if let Ok(l3) = fs::read_to_string("/sys/devices/system/cpu/cpu0/cache/index3/size") {
            info.l3_cache = l3.trim().to_string();
        }
        if let Ok(os) = fs::read_to_string("/etc/os-release") {
            for line in os.lines() {
                if let Some(v) = line.strip_prefix("PRETTY_NAME=") {
                    info.os = v.trim_matches('"').to_string();
                    break;
                }
            }
        }
        info
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_does_not_panic_and_counts_cpus() {
        let info = HostInfo::gather();
        assert!(info.logical_cpus >= 1);
    }
}
