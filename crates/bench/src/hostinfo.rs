//! Host introspection for the Table II analogue.
//!
//! The paper's Table II lists the experimental machines. We cannot
//! reproduce their hardware, so `table2_machine` prints what *this* run
//! executes on (plus the paper's two machines for reference), read from
//! `/proc` and `sysfs` where available.

use std::fs;

/// What we can learn about the host.
#[derive(Clone, Debug, Default)]
pub struct HostInfo {
    /// CPU model string.
    pub cpu_model: String,
    /// Logical CPUs visible to the process.
    pub logical_cpus: usize,
    /// Total memory in GiB.
    pub mem_gib: f64,
    /// L3 cache size string, if exposed.
    pub l3_cache: String,
    /// OS description.
    pub os: String,
}

impl HostInfo {
    /// Gathers host information (best-effort; missing fields stay empty).
    pub fn gather() -> HostInfo {
        let mut info = HostInfo {
            logical_cpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ..Default::default()
        };
        if let Ok(cpuinfo) = fs::read_to_string("/proc/cpuinfo") {
            for line in cpuinfo.lines() {
                if let Some(v) = line.strip_prefix("model name") {
                    info.cpu_model = v.trim_start_matches([' ', '\t', ':']).to_string();
                    break;
                }
            }
        }
        if let Ok(meminfo) = fs::read_to_string("/proc/meminfo") {
            for line in meminfo.lines() {
                if let Some(v) = line.strip_prefix("MemTotal:") {
                    let kb: f64 = v
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0.0);
                    info.mem_gib = kb / 1024.0 / 1024.0;
                    break;
                }
            }
        }
        if let Ok(l3) = fs::read_to_string("/sys/devices/system/cpu/cpu0/cache/index3/size") {
            info.l3_cache = l3.trim().to_string();
        }
        if let Ok(os) = fs::read_to_string("/etc/os-release") {
            for line in os.lines() {
                if let Some(v) = line.strip_prefix("PRETTY_NAME=") {
                    info.os = v.trim_matches('"').to_string();
                    break;
                }
            }
        }
        info
    }

    /// Renders the host description as one compact JSON object, ready to
    /// embed in a bench report.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cpu_model\":\"{}\",\"logical_cpus\":{},\"mem_gib\":{:.2},\
             \"l3_cache\":\"{}\",\"os\":\"{}\"}}",
            obs::json_escape(&self.cpu_model),
            self.logical_cpus,
            self.mem_gib,
            obs::json_escape(&self.l3_cache),
            obs::json_escape(&self.os),
        )
    }
}

/// The current wall-clock time as an ISO-8601 UTC timestamp
/// (`YYYY-MM-DDThh:mm:ssZ`), computed from the Unix epoch with the
/// standard civil-from-days calendar conversion — no date dependency.
pub fn iso_timestamp_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (h, m, s) = (secs / 3600 % 24, secs / 60 % 60, secs % 60);
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_does_not_panic_and_counts_cpus() {
        let info = HostInfo::gather();
        assert!(info.logical_cpus >= 1);
        let json = info.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"logical_cpus\":"));
    }

    #[test]
    fn timestamp_is_iso_shaped() {
        let ts = iso_timestamp_utc();
        // YYYY-MM-DDThh:mm:ssZ is exactly 20 ASCII chars.
        assert_eq!(ts.len(), 20, "got {ts}");
        assert_eq!(&ts[4..5], "-");
        assert_eq!(&ts[10..11], "T");
        assert!(ts.ends_with('Z'));
        let year: i64 = ts[..4].parse().unwrap();
        assert!((2024..2100).contains(&year), "got {ts}");
    }
}
