//! Deterministic RMAT (Graph500-style) graph generation.
//!
//! The recursive-matrix generator of Chakrabarti, Zhan & Faloutsos drops
//! each edge into the adjacency matrix by descending a quadtree: at every
//! level the edge picks the top-left / top-right / bottom-left /
//! bottom-right quadrant with probabilities `(a, b, c, d)`. The Graph500
//! parameters `a = 0.57, b = 0.19, c = 0.19, d = 0.05` concentrate mass
//! in the top-left corner, producing the skewed (power-law-ish) degree
//! distribution that makes direction-optimizing BFS interesting: hub
//! frontiers go dense fast (pull), fringe frontiers stay sparse (push).
//!
//! Everything is seed-deterministic — same `RmatConfig`, same graph, on
//! every platform — via a splitmix64 PRNG, so benchmark reports are
//! reproducible without carrying edge lists around.

use graphblas::CsrMatrix;
use std::collections::BTreeSet;

/// Graph500 quadrant probability `a` (top-left).
pub const GRAPH500_A: f64 = 0.57;
/// Graph500 quadrant probability `b` (top-right).
pub const GRAPH500_B: f64 = 0.19;
/// Graph500 quadrant probability `c` (bottom-left).
pub const GRAPH500_C: f64 = 0.19;

/// Parameters of one RMAT instance.
#[derive(Copy, Clone, Debug)]
pub struct RmatConfig {
    /// log2 of the vertex count: the graph has `2^scale` vertices.
    pub scale: u32,
    /// Target edges per vertex before dedup/self-loop removal
    /// (Graph500 uses 16; small harnesses use less).
    pub edge_factor: usize,
    /// PRNG seed; same seed ⇒ same graph.
    pub seed: u64,
}

/// splitmix64: tiny, fast, and with a full 2^64 period per seed stream.
/// Good enough for quadrant draws and trivially portable.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Generates the directed RMAT edge set for `cfg`: deduplicated,
/// self-loop-free `(src, dst)` pairs in sorted order.
///
/// The generator draws `edge_factor · 2^scale` candidate edges; dedup and
/// self-loop removal mean the returned set is somewhat smaller, with the
/// shortfall concentrated at the hubs (exactly as in Graph500 harnesses).
pub fn rmat_edges(cfg: RmatConfig) -> Vec<(usize, usize)> {
    let n = 1usize << cfg.scale;
    let mut rng = SplitMix64(cfg.seed ^ 0x5851_f42d_4c95_7f2d);
    let mut edges = BTreeSet::new();
    for _ in 0..n * cfg.edge_factor {
        let (mut r0, mut r1, mut half) = (0usize, 0usize, n >> 1);
        while half > 0 {
            let u = rng.next_f64();
            if u < GRAPH500_A {
                // top-left: neither bit set
            } else if u < GRAPH500_A + GRAPH500_B {
                r1 += half;
            } else if u < GRAPH500_A + GRAPH500_B + GRAPH500_C {
                r0 += half;
            } else {
                r0 += half;
                r1 += half;
            }
            half >>= 1;
        }
        if r0 != r1 {
            edges.insert((r0, r1));
        }
    }
    edges.into_iter().collect()
}

/// The undirected (pattern-symmetric) adjacency matrix of an RMAT graph,
/// all weights 1.0 — the input BFS/tricount harnesses want.
pub fn rmat_adjacency(cfg: RmatConfig) -> CsrMatrix<f64> {
    let n = 1usize << cfg.scale;
    let mut sym = BTreeSet::new();
    for (r, c) in rmat_edges(cfg) {
        sym.insert((r, c));
        sym.insert((c, r));
    }
    let triplets: Vec<(usize, usize, f64)> = sym.into_iter().map(|(r, c)| (r, c, 1.0)).collect();
    CsrMatrix::from_triplets(n, n, &triplets).expect("rmat triplets are in-range and deduped")
}

/// The same adjacency with deterministic positive weights (for SSSP):
/// weight of `i → j` derived from the endpoint ids, symmetric by
/// construction so `A[i][j] == A[j][i]`.
pub fn rmat_weighted_adjacency(cfg: RmatConfig) -> CsrMatrix<f64> {
    let n = 1usize << cfg.scale;
    let mut sym = BTreeSet::new();
    for (r, c) in rmat_edges(cfg) {
        sym.insert((r, c));
        sym.insert((c, r));
    }
    let triplets: Vec<(usize, usize, f64)> = sym
        .into_iter()
        .map(|(r, c)| {
            let (lo, hi) = (r.min(c), r.max(c));
            (r, c, 1.0 + ((lo * 31 + hi * 17) % 97) as f64 / 13.0)
        })
        .collect();
    CsrMatrix::from_triplets(n, n, &triplets).expect("rmat triplets are in-range and deduped")
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: RmatConfig = RmatConfig {
        scale: 8,
        edge_factor: 8,
        seed: 42,
    };

    #[test]
    fn same_seed_same_graph_different_seed_different_graph() {
        let a = rmat_edges(CFG);
        let b = rmat_edges(CFG);
        assert_eq!(a, b, "generation is seed-deterministic");
        let c = rmat_edges(RmatConfig { seed: 43, ..CFG });
        assert_ne!(a, c, "a different seed draws a different graph");
    }

    #[test]
    fn edges_are_deduped_loop_free_and_in_range() {
        let n = 1usize << CFG.scale;
        let edges = rmat_edges(CFG);
        assert!(!edges.is_empty());
        for w in edges.windows(2) {
            assert!(w[0] < w[1], "sorted and duplicate-free");
        }
        for &(r, c) in &edges {
            assert_ne!(r, c, "no self-loops");
            assert!(r < n && c < n);
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // The whole point of RMAT: hubs. The max out-degree should tower
        // over the mean — a uniform random graph would be within a small
        // constant of it.
        let n = 1usize << CFG.scale;
        let mut degree = vec![0usize; n];
        let edges = rmat_edges(CFG);
        for &(r, _) in &edges {
            degree[r] += 1;
        }
        let max = *degree.iter().max().unwrap();
        let mean = edges.len() as f64 / n as f64;
        assert!(
            max as f64 > 4.0 * mean,
            "max degree {max} should dwarf mean {mean:.2}"
        );
    }

    #[test]
    fn adjacency_is_pattern_symmetric_and_square() {
        let a = rmat_adjacency(CFG);
        assert_eq!(a.nrows(), a.ncols());
        assert!(a.check_pattern_symmetric().is_ok());
        let w = rmat_weighted_adjacency(CFG);
        assert!(w.check_pattern_symmetric().is_ok());
        // Weighted variant keeps A[i][j] == A[j][i] numerically, too:
        // tricount and undirected SSSP both rely on it.
        let dense_at = |m: &CsrMatrix<f64>, i: usize, j: usize| -> f64 {
            let (cols, vals) = m.row(i);
            cols.iter()
                .position(|&c| c as usize == j)
                .map_or(0.0, |k| vals[k])
        };
        let (cols, _) = w.row(1);
        for &j in cols {
            assert_eq!(dense_at(&w, 1, j as usize), dense_at(&w, j as usize, 1));
        }
    }
}
