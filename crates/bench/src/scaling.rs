//! The calibrated shared-memory strong-scaling model (Figs 1-2 substitute).
//!
//! The paper measured strong scaling on a dual-socket Kunpeng 920 and a
//! dual-socket Xeon Gold (Table II). This container has neither, so the
//! strong-scaling harnesses combine:
//!
//! 1. **real measurement** of the per-iteration wall-clock at the thread
//!    counts the container can express, which calibrates
//! 2. **a roofline thread model** for the paper's full thread range.
//!
//! HPCG is memory-bandwidth bound, so the model is a bandwidth curve:
//! adding threads raises the sustained bandwidth until a socket saturates;
//! crossing the socket boundary adds the second memory system; a
//! NUMA-unaware implementation (the paper's `Ref`, §IV) loses a fraction
//! of bandwidth once it spans multiple NUMA domains, while ALP's
//! interleaved NUMA-aware allocator does not. A per-parallel-region
//! fork-join term models the color-step synchronizations that dominate at
//! high thread counts. These are exactly the mechanisms the paper invokes
//! to explain Figs 1-2 (§V-A); the constants are stated inline and swept
//! by the `model_sensitivity` test.

/// A shared-memory machine description for the scaling model.
#[derive(Copy, Clone, Debug)]
pub struct SharedMemoryMachine {
    /// Display name.
    pub name: &'static str,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Sockets.
    pub sockets: usize,
    /// Hardware threads per core (1 = no SMT).
    pub smt: usize,
    /// Sustained memory bandwidth of one socket, bytes/s.
    pub bw_per_socket: f64,
    /// Threads needed to saturate one socket's bandwidth.
    pub bw_saturation_threads: usize,
    /// NUMA domains per socket (Kunpeng: 2).
    pub numa_domains_per_socket: usize,
}

impl SharedMemoryMachine {
    /// The paper's ARM machine (Kunpeng 920-4826, Table II).
    pub fn arm() -> SharedMemoryMachine {
        SharedMemoryMachine {
            name: "ARM (Kunpeng 920)",
            cores_per_socket: 48,
            sockets: 2,
            smt: 1,
            bw_per_socket: 123.15e9, // 246.3 GB/s attained across 2 sockets
            bw_saturation_threads: 16,
            numa_domains_per_socket: 2,
        }
    }

    /// The paper's x86 machine (Xeon Gold 6238T, Table II).
    pub fn x86() -> SharedMemoryMachine {
        SharedMemoryMachine {
            name: "x86 (Xeon Gold 6238T)",
            cores_per_socket: 22,
            sockets: 2,
            smt: 2,
            bw_per_socket: 96.0e9, // 192 GB/s attained across 2 sockets
            bw_saturation_threads: 10,
            numa_domains_per_socket: 1,
        }
    }
}

/// The per-implementation scaling model.
#[derive(Copy, Clone, Debug)]
pub struct StrongScalingModel {
    /// The machine being modeled.
    pub machine: SharedMemoryMachine,
    /// Fraction of roofline bandwidth this implementation sustains.
    /// The paper attributes ALP's edge to compile-time algebraic
    /// optimization (§V-A); `Ref` leaves some bandwidth unexploited.
    pub impl_efficiency: f64,
    /// Whether allocations are NUMA-aware/interleaved (ALP yes, Ref no).
    pub numa_aware: bool,
    /// Multiplier on the machine's bandwidth-saturation constant: how many
    /// threads this implementation needs to approach the bandwidth ceiling
    /// (ALP 1.0; Ref higher — "ALP shows ... to saturate more quickly",
    /// §V-A).
    pub saturation_tau_factor: f64,
    /// Fork-join cost per parallel region, seconds (scales with log₂ t).
    pub fork_join_secs: f64,
    /// Parallel regions per CG iteration (16 color steps × levels + CG ops).
    pub regions_per_iter: f64,
    /// Calibration factor: measured/modeled single-thread ratio.
    pub calibration: f64,
}

/// Per-extra-NUMA-domain bandwidth factor for a NUMA-unaware
/// implementation: each additional domain spanned increases the fraction
/// of remote accesses (§V-A attributes Ref's single-socket ARM dip and its
/// weak second-socket gain to exactly this).
const NUMA_UNAWARE_PENALTY: f64 = 0.88;

impl StrongScalingModel {
    /// Model of the paper's ALP implementation.
    pub fn alp(machine: SharedMemoryMachine) -> StrongScalingModel {
        StrongScalingModel {
            machine,
            impl_efficiency: 0.92,
            numa_aware: true,
            saturation_tau_factor: 1.0,
            fork_join_secs: 6.0e-6,
            regions_per_iter: 80.0,
            calibration: 1.0,
        }
    }

    /// Model of the paper's Ref implementation (NUMA-unaware allocations,
    /// §IV; slightly lower sustained bandwidth).
    pub fn reference(machine: SharedMemoryMachine) -> StrongScalingModel {
        StrongScalingModel {
            machine,
            impl_efficiency: 0.80,
            numa_aware: false,
            saturation_tau_factor: 2.0,
            fork_join_secs: 6.0e-6,
            regions_per_iter: 80.0,
            calibration: 1.0,
        }
    }

    /// Effective sustained bandwidth at `threads` threads, packed on as few
    /// sockets as possible (the paper's pinning policy, §V-A).
    pub fn effective_bandwidth(&self, threads: usize) -> f64 {
        let m = &self.machine;
        let hw_threads_per_socket = m.cores_per_socket * m.smt;
        let sockets_used = threads
            .div_ceil(hw_threads_per_socket)
            .min(m.sockets)
            .max(1);
        let mut bw = 0.0;
        let mut remaining = threads;
        for _ in 0..sockets_used {
            let on_socket = remaining.min(hw_threads_per_socket);
            remaining -= on_socket;
            // SMT siblings add no bandwidth: count physical cores occupied.
            let cores = on_socket.min(m.cores_per_socket);
            // Smooth saturation: bandwidth approaches the socket ceiling
            // exponentially; `bw_saturation_threads` is the ~95 % point for
            // a saturation_tau_factor of 1.
            let tau = m.bw_saturation_threads as f64 / 3.0 * self.saturation_tau_factor;
            let frac = 1.0 - (-(cores as f64) / tau).exp();
            bw += m.bw_per_socket * frac;
        }
        // NUMA-unaware allocations place pages on one domain; once threads
        // span several domains, remote accesses eat into bandwidth.
        let domains_spanned = {
            let cores_used = threads.div_ceil(m.smt);
            let cores_per_domain = m.cores_per_socket / m.numa_domains_per_socket;
            cores_used.div_ceil(cores_per_domain)
        };
        if !self.numa_aware && domains_spanned > 1 {
            bw *= NUMA_UNAWARE_PENALTY.powi(domains_spanned as i32 - 1);
        }
        bw * self.impl_efficiency
    }

    /// Modeled seconds for one CG iteration streaming `bytes_per_iter`.
    pub fn secs_per_iteration(&self, bytes_per_iter: f64, threads: usize) -> f64 {
        let bw = self.effective_bandwidth(threads);
        let sync = self.regions_per_iter * self.fork_join_secs * (threads.max(2) as f64).log2();
        self.calibration * (bytes_per_iter / bw + sync)
    }

    /// Modeled total seconds for a run of `iters` iterations.
    pub fn run_secs(&self, bytes_per_iter: f64, threads: usize, iters: usize) -> f64 {
        self.secs_per_iteration(bytes_per_iter, threads) * iters as f64
    }

    /// Calibrates the model so its 1-thread prediction matches a measured
    /// 1-thread per-iteration time on *this* host, preserving the model's
    /// relative shape while grounding absolute numbers in measurement.
    pub fn calibrate(&mut self, measured_secs_per_iter: f64, bytes_per_iter: f64) {
        let predicted = self.secs_per_iteration(bytes_per_iter, 1) / self.calibration;
        if predicted > 0.0 && measured_secs_per_iter > 0.0 {
            self.calibration = measured_secs_per_iter / predicted;
        }
    }
}

/// Closed-form nonzero count of the 27-point stencil on a cubic grid of
/// side `s`: the per-dimension stencil spans sum to `3s − 2`, and the 3D
/// stencil is their product.
pub fn stencil_nnz(s: usize) -> f64 {
    let span = (3 * s - 2) as f64;
    span * span * span
}

/// Analytic bytes-per-CG-iteration for a cubic HPCG problem of side `s`
/// with `levels` multigrid levels — the same accounting as
/// `hpcg::bytes_per_iteration`, computed without building the matrix, so
/// the scaling model can use the paper's memory-filling problem sizes
/// (hundreds³) that this container cannot allocate.
pub fn model_bytes(s: usize, levels: usize) -> f64 {
    let csr = |nnz: f64, rows: f64| nnz * (8.0 + 4.0 + 8.0) + rows * 16.0;
    let mut side = s;
    let n0 = (s * s * s) as f64;
    let mut bytes = csr(stencil_nnz(s), n0) + 6.0 * 2.0 * n0 * 8.0;
    for lvl in 0..levels {
        let nnz = stencil_nnz(side);
        let n = (side * side * side) as f64;
        if lvl + 1 < levels {
            bytes += 4.0 * csr(nnz, n) + csr(nnz, n) + 5.0 * n * 8.0;
            side /= 2;
        } else {
            bytes += 2.0 * csr(nnz, n);
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    const BYTES: f64 = 1.0e9; // a 1 GB/iteration working set

    #[test]
    fn stencil_nnz_closed_form_matches_generator() {
        for s in [2usize, 4, 8, 16] {
            let a = hpcg::problem::build_stencil_matrix(hpcg::Grid3::cube(s));
            assert_eq!(stencil_nnz(s), a.nnz() as f64, "side {s}");
        }
    }

    #[test]
    fn model_bytes_matches_driver_accounting() {
        for (s, levels) in [(8usize, 2usize), (16, 3), (16, 4)] {
            let p = hpcg::Problem::build_with(
                hpcg::Grid3::cube(s),
                levels,
                hpcg::RhsVariant::Reference,
            )
            .unwrap();
            let exact = hpcg::bytes_per_iteration(&p);
            let modeled = model_bytes(s, levels);
            assert!(
                ((exact - modeled) / exact).abs() < 1e-12,
                "side {s} levels {levels}: {exact} vs {modeled}"
            );
        }
    }

    #[test]
    fn paper_scale_problems_are_bandwidth_dominated() {
        // At the paper's memory-filling sizes the bandwidth term dwarfs the
        // fork-join term, so more threads must mean less time.
        let m = SharedMemoryMachine::arm();
        let alp = StrongScalingModel::alp(m);
        let bytes = model_bytes(256, 4);
        let t16 = alp.secs_per_iteration(bytes, 16);
        let t48 = alp.secs_per_iteration(bytes, 48);
        let t96 = alp.secs_per_iteration(bytes, 96);
        assert!(t48 < t16);
        assert!(t96 < t48);
    }

    #[test]
    fn alp_at_or_below_ref_everywhere() {
        // The paper's headline shared-memory result (Figs 1-2).
        for machine in [SharedMemoryMachine::arm(), SharedMemoryMachine::x86()] {
            let alp = StrongScalingModel::alp(machine);
            let reference = StrongScalingModel::reference(machine);
            for t in [1, 4, 8, 16, 22, 24, 44, 48, 88, 96] {
                assert!(
                    alp.secs_per_iteration(BYTES, t) <= reference.secs_per_iteration(BYTES, t),
                    "ALP slower than Ref at {t} threads on {}",
                    machine.name
                );
            }
        }
    }

    #[test]
    fn alp_saturates_earlier() {
        // §V-A: "ALP shows on both systems to saturate more quickly".
        let m = SharedMemoryMachine::arm();
        let alp = StrongScalingModel::alp(m);
        let reference = StrongScalingModel::reference(m);
        let gain = |model: &StrongScalingModel| {
            model.secs_per_iteration(BYTES, 16) / model.secs_per_iteration(BYTES, 24)
        };
        // Both still gain from 16→24 threads, but ALP less (already closer
        // to the bandwidth ceiling).
        assert!(gain(&alp) <= gain(&reference) + 1e-12);
    }

    #[test]
    fn crossing_sockets_helps_alp_more_than_ref() {
        // Fig 1: Ref's NUMA-unaware allocation blunts the second socket.
        let m = SharedMemoryMachine::arm();
        let alp = StrongScalingModel::alp(m);
        let reference = StrongScalingModel::reference(m);
        let speedup = |model: &StrongScalingModel| {
            model.secs_per_iteration(BYTES, 48) / model.secs_per_iteration(BYTES, 96)
        };
        assert!(speedup(&alp) > 1.2, "second socket must help ALP");
        assert!(speedup(&alp) > speedup(&reference));
    }

    #[test]
    fn numa_unaware_pays_once_spanning_domains() {
        // Kunpeng has 2 NUMA domains per socket (Table II): Ref degrades as
        // threads approach the full socket (the paper's Fig 1 observation).
        let m = SharedMemoryMachine::arm();
        let unaware = StrongScalingModel::reference(m);
        let aware = StrongScalingModel {
            numa_aware: true,
            ..unaware
        };
        // Within one domain (24 cores): no penalty, models agree.
        assert_eq!(
            unaware.effective_bandwidth(16),
            aware.effective_bandwidth(16)
        );
        // Spanning both domains of a socket: the unaware model loses bandwidth.
        assert!(unaware.effective_bandwidth(48) < aware.effective_bandwidth(48) * 0.9);
    }

    #[test]
    fn hyperthreads_add_little() {
        // Fig 2's "44 - 1S": SMT on a saturated socket barely moves time.
        let m = SharedMemoryMachine::x86();
        let alp = StrongScalingModel::alp(m);
        let t22 = alp.secs_per_iteration(BYTES, 22);
        let t44_1s = alp.secs_per_iteration(BYTES, 44); // packs on 1 socket (22 cores × 2 SMT)
        assert!(
            (t44_1s - t22) / t22 < 0.10,
            "SMT gains small: {t22} vs {t44_1s}"
        );
    }

    #[test]
    fn calibration_scales_absolute_times() {
        let m = SharedMemoryMachine::arm();
        let mut model = StrongScalingModel::alp(m);
        let before = model.secs_per_iteration(BYTES, 8);
        model.calibrate(model.secs_per_iteration(BYTES, 1) * 3.0, BYTES);
        let after = model.secs_per_iteration(BYTES, 8);
        assert!(
            (after / before - 3.0).abs() < 1e-9,
            "shape preserved, scale ×3"
        );
    }

    #[test]
    fn model_sensitivity_shape_robust() {
        // The who-wins ordering must not hinge on the exact constants:
        // sweep efficiency and NUMA penalty ±20 % and re-check.
        let m = SharedMemoryMachine::arm();
        for eff_ref in [0.70, 0.80, 0.88] {
            for fork in [3.0e-6, 6.0e-6, 12.0e-6] {
                let alp = StrongScalingModel {
                    impl_efficiency: 0.92,
                    fork_join_secs: fork,
                    ..StrongScalingModel::alp(m)
                };
                let reference = StrongScalingModel {
                    impl_efficiency: eff_ref,
                    fork_join_secs: fork,
                    ..StrongScalingModel::reference(m)
                };
                for t in [16, 32, 48, 96] {
                    assert!(
                        alp.secs_per_iteration(BYTES, t) <= reference.secs_per_iteration(BYTES, t)
                    );
                }
            }
        }
    }
}
