//! Shared logic of the strong-scaling harnesses (Figs 1-2).
//!
//! For each requested thread count the harness reports:
//!
//! * **measured** wall-clock of a real run inside a rayon pool of that
//!   size (marked oversubscribed when the count exceeds the host's
//!   logical CPUs — the container is not the paper's 96-thread machine);
//! * **modeled** wall-clock from the calibrated [`StrongScalingModel`],
//!   which extends the curve to the paper's hardware.
//!
//! The paper's claims live in the *relative* curves: ALP at or below Ref
//! everywhere, earlier saturation for ALP, Ref blunted across NUMA
//! domains.

use crate::scaling::{SharedMemoryMachine, StrongScalingModel};
use crate::table::{fmt_secs, Table};
use graphblas::Parallel;
use hpcg::driver::{bytes_per_iteration, flops_per_iteration, run_with_rhs, RunConfig};
use hpcg::{GrbHpcg, Grid3, Problem, RefHpcg, RhsVariant};

/// One row of the strong-scaling output.
#[derive(Clone, Debug)]
pub struct StrongRow {
    /// Thread count (x-axis of Figs 1-2).
    pub threads: usize,
    /// Measured ALP seconds (None when not measurable on this host).
    pub measured_alp: Option<f64>,
    /// Measured Ref seconds.
    pub measured_ref: Option<f64>,
    /// Modeled ALP seconds on the paper's machine.
    pub modeled_alp: f64,
    /// Modeled Ref seconds on the paper's machine.
    pub modeled_ref: f64,
}

/// Runs the strong-scaling experiment and returns the rows.
///
/// `size` is the measurable problem this host runs; `model_side` is the
/// paper-scale problem (memory-filling, hundreds³) whose byte volume the
/// model extrapolates to — the paper sets "the problem size ... to the
/// maximum that fits in the system memory" (§V-A), far beyond what this
/// container can allocate.
pub fn run_strong_scaling(
    machine: SharedMemoryMachine,
    threads_list: &[usize],
    size: usize,
    model_side: usize,
    iterations: usize,
    measure_limit: usize,
) -> Vec<StrongRow> {
    let problem = Problem::build_with(Grid3::cube(size), 4, RhsVariant::Reference)
        .expect("grid size must be divisible by 8");
    let bytes_small = bytes_per_iteration(&problem);
    let bytes = crate::scaling::model_bytes(model_side, 4);
    let flops = flops_per_iteration(&problem);
    let config = RunConfig {
        iterations,
        preconditioned: true,
    };

    // Calibrate both models by a *common* factor: the mean measured
    // 1-thread per-iteration time over the mean prediction. Absolute scale
    // comes from this host; the relative ALP/Ref shape stays the model's
    // (per-implementation calibration would overwrite the paper's
    // machine-level mechanisms with this container's quirks).
    let (alp_1t, ref_1t) = measure_pair(&problem, flops, config, 1);
    let mut alp_model = StrongScalingModel::alp(machine);
    let mut ref_model = StrongScalingModel::reference(machine);
    let measured_mean = (alp_1t + ref_1t) / 2.0 / iterations as f64;
    let predicted_mean = (alp_model.secs_per_iteration(bytes_small, 1)
        + ref_model.secs_per_iteration(bytes_small, 1))
        / 2.0;
    let common = measured_mean / predicted_mean;
    alp_model.calibration = common;
    ref_model.calibration = common;

    threads_list
        .iter()
        .map(|&t| {
            let (ma, mr) = if t <= measure_limit {
                let (a, r) = measure_pair(&problem, flops, config, t);
                (Some(a), Some(r))
            } else {
                (None, None)
            };
            StrongRow {
                threads: t,
                measured_alp: ma,
                measured_ref: mr,
                modeled_alp: alp_model.run_secs(bytes, t, iterations),
                modeled_ref: ref_model.run_secs(bytes, t, iterations),
            }
        })
        .collect()
}

fn measure_pair(problem: &Problem, flops: f64, config: RunConfig, threads: usize) -> (f64, f64) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool construction");
    pool.install(|| {
        let b_grb = problem.b.clone();
        let mut alp = GrbHpcg::<Parallel>::new(problem.clone());
        let (ra, _) = run_with_rhs(&mut alp, &b_grb, flops, config);
        let b_vec = problem.b.as_slice().to_vec();
        let mut reference = RefHpcg::new(problem.clone());
        let (rr, _) = run_with_rhs(&mut reference, &b_vec, flops, config);
        (ra.total_secs, rr.total_secs)
    })
}

/// Prints the rows in the paper's figure layout.
pub fn print_rows(machine: &SharedMemoryMachine, rows: &[StrongRow], host_threads: usize) {
    println!(
        "strong scaling on modeled {} (measured on this {}-cpu host)",
        machine.name, host_threads
    );
    let mut t = Table::new(&[
        "threads",
        "ALP measured",
        "Ref measured",
        "ALP modeled",
        "Ref modeled",
        "Ref/ALP",
    ]);
    for r in rows {
        t.row(vec![
            r.threads.to_string(),
            r.measured_alp.map(fmt_secs).unwrap_or_else(|| "-".into()),
            r.measured_ref.map(fmt_secs).unwrap_or_else(|| "-".into()),
            fmt_secs(r.modeled_alp),
            fmt_secs(r.modeled_ref),
            format!("{:.2}x", r.modeled_ref / r.modeled_alp),
        ]);
    }
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_scaling_rows_have_paper_shape() {
        let rows = run_strong_scaling(SharedMemoryMachine::arm(), &[16, 48, 96], 8, 128, 2, 1);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.modeled_alp <= r.modeled_ref,
                "ALP wins at {} threads",
                r.threads
            );
            assert!(r.modeled_alp > 0.0);
            assert!(r.measured_alp.is_none() || r.threads <= 1 || r.measured_alp.unwrap() > 0.0);
        }
        // With a paper-scale modeled working set the bandwidth term
        // dominates: more threads → faster until saturation.
        assert!(
            rows[1].modeled_alp < rows[0].modeled_alp,
            "48 threads beat 16"
        );
        assert!(
            rows[2].modeled_alp < rows[1].modeled_alp,
            "two sockets beat one"
        );
    }
}
