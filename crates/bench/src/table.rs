//! Fixed-width table printing for harness output.
//!
//! The harnesses print the same rows/series the paper's tables and figures
//! report; aligned columns keep them diffable and pasteable.

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            line
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header, &widths));
            out.push('\n');
            out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds adaptively (`ms` below 1 s).
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

/// Formats byte counts adaptively.
pub fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2} KB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
        // Column alignment: all lines same width for the value column end.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_secs(2.5), "2.500 s");
        assert_eq!(fmt_secs(0.0025), "2.500 ms");
        assert_eq!(fmt_bytes(1536.0), "1.54 KB");
        assert_eq!(fmt_bytes(2.5e9), "2.50 GB");
    }
}
