//! Machine-readable scaling sweep of the distributed GraphBLAS backend.
//!
//! Runs preconditioned CG through [`AlpDistHpcg`] — HPCG on
//! `Ctx<Distributed>` — over a list of simulated node counts, prints a
//! human-readable table, and writes the full per-node-count breakdown
//! (modeled wall-clock, measured sharded wall-clock, real speedup against
//! a timed `Sequential` baseline of the same solve, split-phase overlap
//! hidden per point, communication volume, superstep count, per-kernel
//! costs, and the Table I closed-form allgather check) as JSON, so the
//! perf trajectory of the distributed path is diffable across commits.
//!
//! ```text
//! cargo run --release -p hpcg-bench --bin scaling_report -- \
//!     [--size 16] [--levels 2] [--iters 5] [--nodes 1,2,4,8] \
//!     [--out BENCH_dist.json]
//! ```

use bsp::collectives::allgather_h_bytes;
use bsp::cost::KernelClass;
use bsp::machine::MachineParams;
use graphblas::{CostSummary, Sequential};
use hpcg::distributed::{run_distributed, AlpDistHpcg};
use hpcg::{cg_solve, CgWorkspace, GrbHpcg, Grid3, Kernels, MgWorkspace, Problem, RhsVariant};
use hpcg_bench::cli::Args;
use hpcg_bench::table::Table;
use std::fmt::Write as _;

fn main() {
    let args = Args::from_env();
    let size = args.get_usize("size", 16);
    let levels = args.get_usize("levels", 2);
    let iters = args.get_usize("iters", 5);
    let nodes_list = args.get_usize_list("nodes", &[1, 2, 4, 8]);
    if let Some(raw) = args.get_str("nodes") {
        let entries = raw.split(',').filter(|s| !s.trim().is_empty()).count();
        if nodes_list.len() != entries || nodes_list.contains(&0) {
            eprintln!("error: invalid --nodes {raw:?} (expected a comma-separated list of positive integers)");
            std::process::exit(2);
        }
    }
    let out_path = args.get_str("out").unwrap_or("BENCH_dist.json").to_string();

    let machine = MachineParams::arm_cluster();
    let problem = Problem::build_with(Grid3::cube(size), levels, RhsVariant::Reference)
        .expect("cube size must be coarsenable to the requested levels");
    let n = problem.n();

    // Timed Sequential baseline of the exact same solve: the denominator
    // of each sweep point's real (measured, not modeled) speedup.
    let seq_secs = {
        let mut seq = GrbHpcg::<Sequential>::new(problem.clone());
        let mut cg_ws = CgWorkspace::new(&seq);
        let mut mg_ws = MgWorkspace::new(&seq);
        let mut x = seq.alloc(0);
        let b = problem.b.clone();
        let t0 = std::time::Instant::now();
        cg_solve(
            &mut seq, &mut cg_ws, &mut mg_ws, &b, &mut x, iters, 0.0, true,
        );
        t0.elapsed().as_secs_f64()
    };

    println!(
        "distributed scaling sweep: n = {n}, {levels} MG level(s), {iters} CG iteration(s), \
         nodes {nodes_list:?}\n"
    );
    let mut table = Table::new(&[
        "p",
        "modeled time",
        "measured time",
        "real speedup",
        "overlap hidden",
        "comm",
        "supersteps",
        "spmv h/step",
        "n(p-1)/p model",
        "rel. residual",
    ]);

    let mut entries = String::new();
    for (i, &p) in nodes_list.iter().enumerate() {
        let mut alp = AlpDistHpcg::new(problem.clone(), p, machine);
        let b = problem.b.clone();
        let (report, _) = run_distributed(&mut alp, &b, iters);
        let summary = CostSummary::from_steps(p, "1D block-cyclic", alp.tracker().steps());

        // Table I closed-form cross-check against the run's own trace:
        // any fine-level spmv superstep carries the full-input allgather.
        let spmv_h = alp
            .tracker()
            .steps()
            .iter()
            .find(|s| s.class == KernelClass::SpMV && s.mg_level == Some(0))
            .expect("a CG run records fine-level spmv supersteps")
            .h_bytes;
        let closed_form = allgather_h_bytes(p, n / p, 8);
        // On even splits the recorded volume must BE the closed form — a
        // hard gate, so the ci.sh smoke sweep catches accounting drift.
        // (Uneven splits legitimately exceed floor(n/p) on the max shard.)
        if n.is_multiple_of(p) {
            assert_eq!(
                spmv_h, closed_form,
                "recorded allgather diverged from Table I's n(p-1)/p at p={p}"
            );
        }

        let real_speedup = seq_secs / summary.total_measured_secs.max(1e-12);
        table.row(vec![
            p.to_string(),
            format!("{:.3} ms", report.modeled_secs * 1e3),
            format!("{:.3} ms", summary.total_measured_secs * 1e3),
            format!("{real_speedup:.2}x"),
            format!("{:.3} ms", summary.total_overlap_hidden_secs * 1e3),
            format!("{:.2} MB", report.comm_bytes / 1e6),
            report.supersteps.to_string(),
            format!("{spmv_h:.0} B"),
            format!("{closed_form:.0} B"),
            format!("{:.2e}", report.relative_residual),
        ]);

        let mut per_class = String::new();
        for (j, c) in summary.per_class.iter().enumerate() {
            let _ = write!(
                per_class,
                "{}{{\"class\": \"{}\", \"secs\": {:.9e}, \"measured_secs\": {:.9e}, \
                 \"model_error\": {:.4}, \"h_bytes\": {:.1}, \"steps\": {}}}",
                if j == 0 { "" } else { ", " },
                CostSummary::class_name(c.class),
                c.secs,
                c.measured_secs,
                c.model_error(),
                c.h_bytes,
                c.steps,
            );
        }
        let _ = write!(
            entries,
            "{}    {{\n      \"nodes\": {p},\n      \"modeled_secs\": {:.9e},\n      \
             \"measured_secs\": {:.9e},\n      \"model_error\": {:.4},\n      \
             \"real_speedup\": {:.4},\n      \"overlap_hidden_secs\": {:.9e},\n      \
             \"comm_bytes\": {:.1},\n      \"supersteps\": {},\n      \
             \"relative_residual\": {:.6e},\n      \"spmv_h_bytes\": {spmv_h:.1},\n      \
             \"allgather_closed_form_bytes\": {closed_form:.1},\n      \
             \"per_class\": [{per_class}]\n    }}",
            if i == 0 { "" } else { ",\n" },
            report.modeled_secs,
            summary.total_measured_secs,
            summary.model_error(),
            real_speedup,
            summary.total_overlap_hidden_secs,
            report.comm_bytes,
            report.supersteps,
            report.relative_residual,
        );
    }
    print!("{}", table.render());

    let json = format!(
        "{{\n  \"bench\": \"scaling_report\",\n  \"implementation\": \"ALP distributed \
         (1D block-cyclic over graphblas::Distributed)\",\n  \"n\": {n},\n  \
         \"mg_levels\": {levels},\n  \"cg_iterations\": {iters},\n  \
         \"sequential_baseline_secs\": {seq_secs:.9e},\n  \"machine\": {{\n    \
         \"flops_per_sec\": {:.6e},\n    \"mem_bw_bytes_per_sec\": {:.6e},\n    \
         \"g_secs_per_byte\": {:.6e},\n    \"l_secs\": {:.6e}\n  }},\n  \"sweep\": [\n{entries}\n  ]\n}}\n",
        machine.flops_per_sec, machine.mem_bw_bytes_per_sec, machine.g_secs_per_byte, machine.l_secs,
    );
    std::fs::write(&out_path, &json).expect("writing the JSON report must succeed");
    println!("\nwrote {out_path} ({} bytes)", json.len());
}
