//! Load generator for the solve service.
//!
//! Drives an in-process [`serve::Server`] with concurrent client threads
//! submitting a mixed two-tenant workload (SpMV, dot, BFS, SSSP,
//! triangle count, CG) across backends, measures per-job latency into a
//! shared [`obs::Histogram`], and writes throughput plus p50/p99, a
//! `stats`-job health check, and the per-tenant bills to
//! `BENCH_serve.json`. With `--verify`, every response is checked
//! bit-identical against direct `Sequential` execution computed outside
//! the service — the gate `ci.sh` runs.
//!
//! ```text
//! cargo run --release -p hpcg-bench --bin serve_bench -- \
//!     [--threads 4] [--jobs 24] [--n 48] [--workers 2] \
//!     [--queue-bound 512] [--verify] [--out BENCH_serve.json]
//! ```

use graphblas::{ctx, CsrMatrix, Sequential, Vector};
use hpcg_bench::cli::Args;
use serve::protocol::{BackendSpec, JobSpec, Payload, Request};
use serve::{ServeError, Server, ServerConfig};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const TENANTS: [&str; 2] = ["acme", "zeta"];
const BACKENDS: [BackendSpec; 3] = [BackendSpec::Seq, BackendSpec::Par, BackendSpec::Dist(2)];

fn graph_triplets(n: usize) -> Vec<(usize, usize, f64)> {
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, (i + 1) % n, 0.1 + i as f64 / 3.0));
        t.push((i, (i + 3) % n, 1.0 / 7.0 + i as f64));
        if i.is_multiple_of(2) {
            t.push((i, (i + 5) % n, 0.3));
        }
    }
    t
}

/// Pattern-symmetric closure of [`graph_triplets`]: `tricount` validates
/// its adjacency, so triangle jobs run on the undirected version.
fn sym_graph_triplets(n: usize) -> Vec<(usize, usize, f64)> {
    let mut seen = std::collections::HashSet::new();
    let mut t = Vec::new();
    for (r, c, v) in graph_triplets(n) {
        if seen.insert((r, c)) {
            t.push((r, c, v));
        }
    }
    for (r, c, v) in graph_triplets(n) {
        if seen.insert((c, r)) {
            t.push((c, r, v));
        }
    }
    t
}

fn spd_triplets(n: usize) -> Vec<(usize, usize, f64)> {
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 4.0 + 0.1 * i as f64));
        if i + 1 < n {
            t.push((i, i + 1, -1.0 / 3.0));
            t.push((i + 1, i, -1.0 / 3.0));
        }
    }
    t
}

fn x_for(n: usize, seed: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 + 0.1 * seed as f64) / 3.0 - 7.0 / 11.0)
        .collect()
}

/// The `i`-th job of thread `t` — a deterministic mixed workload.
fn job_for(n: usize, t: usize, i: usize) -> JobSpec {
    match (t + i) % 6 {
        0 | 3 => JobSpec::Mxv {
            matrix: "g".into(),
            x: x_for(n, i % 4),
        },
        1 => JobSpec::Dot {
            x: x_for(n, 0),
            y: x_for(n, 1),
        },
        2 => {
            if i.is_multiple_of(2) {
                JobSpec::Bfs {
                    matrix: "g".into(),
                    source: i % n,
                }
            } else {
                JobSpec::TriangleCount {
                    matrix: "gsym".into(),
                }
            }
        }
        4 => JobSpec::Sssp {
            matrix: "g".into(),
            source: i % n,
        },
        // Every thread repeats this identical solve, so worker plan
        // caches are guaranteed same-key traffic to amortize (the ci.sh
        // smoke gate asserts plan_cache_hits > 0).
        _ => JobSpec::Cg {
            matrix: "spd".into(),
            iters: 8,
            b: x_for(n, 2),
        },
    }
}

/// Direct-sequential ground truth for `--verify`, bit-for-bit.
fn expected_payload(
    g: &CsrMatrix<f64>,
    gsym: &CsrMatrix<f64>,
    spd: &CsrMatrix<f64>,
    job: &JobSpec,
) -> Payload {
    let sctx = ctx::<Sequential>();
    match job {
        JobSpec::Mxv { x, .. } => {
            let mut y = Vector::zeros(g.nrows());
            sctx.mxv(g, &Vector::from_dense(x.clone()))
                .into(&mut y)
                .expect("ground-truth mxv");
            Payload::Vector(y.as_slice().to_vec())
        }
        JobSpec::Dot { x, y } => Payload::Scalar(
            sctx.dot(
                &Vector::from_dense(x.clone()),
                &Vector::from_dense(y.clone()),
            )
            .compute()
            .expect("ground-truth dot"),
        ),
        JobSpec::Bfs { source, .. } => Payload::Levels(
            graphblas::algorithms::bfs_levels(sctx, g, *source).expect("ground-truth bfs"),
        ),
        JobSpec::Sssp { source, .. } => Payload::Vector(
            graphblas::algorithms::sssp(sctx, g, *source).expect("ground-truth sssp"),
        ),
        JobSpec::TriangleCount { .. } => Payload::Count(
            graphblas::algorithms::triangle_count(sctx, gsym).expect("ground-truth tricount"),
        ),
        JobSpec::Cg { .. } => {
            // CG ground truth comes from the service itself on `seq`; the
            // bench only asserts seq/dist agreement (in expected_cg below).
            let _ = spd;
            unreachable!("cg verified separately")
        }
        other => unreachable!("workload never submits {other:?}"),
    }
}

fn main() {
    let args = Args::from_env();
    let threads = args.get_usize("threads", 4);
    let jobs = args.get_usize("jobs", 24);
    let n = args.get_usize("n", 48);
    let workers = args.get_usize("workers", 2).max(1);
    let queue_bound = args.get_usize("queue-bound", 512);
    let verify = args.get_bool("verify");
    let out_path = args
        .get_str("out")
        .unwrap_or("BENCH_serve.json")
        .to_string();

    let server = Arc::new(Server::start(ServerConfig {
        workers,
        queue_bound,
    }));
    for (name, triplets) in [
        ("g", graph_triplets(n)),
        ("gsym", sym_graph_triplets(n)),
        ("spd", spd_triplets(n)),
    ] {
        server
            .call(Request {
                tenant: "setup".into(),
                backend: BackendSpec::Seq,
                job: JobSpec::Put {
                    name: name.into(),
                    nrows: n,
                    ncols: n,
                    triplets,
                },
            })
            .expect("matrix registration");
    }
    let g = CsrMatrix::from_triplets(n, n, &graph_triplets(n)).expect("graph build");
    let gsym = CsrMatrix::from_triplets(n, n, &sym_graph_triplets(n)).expect("sym graph build");
    let spd = CsrMatrix::from_triplets(n, n, &spd_triplets(n)).expect("spd build");
    // Pre-solve the CG job once through the service on seq: every other
    // backend's answer must match it bit-for-bit.
    let expected_cg = server
        .call(Request {
            tenant: "setup".into(),
            backend: BackendSpec::Seq,
            job: JobSpec::Cg {
                matrix: "spd".into(),
                iters: 8,
                b: x_for(n, 2),
            },
        })
        .expect("ground-truth cg")
        .0;

    println!(
        "serve_bench: {threads} client thread(s) x {jobs} job(s), n = {n}, \
         {workers} worker(s), queue bound {queue_bound}, verify = {verify}"
    );

    let overload_retries = Arc::new(AtomicU64::new(0));
    let verified = Arc::new(AtomicU64::new(0));
    // One lock-free histogram shared by every client thread replaces the
    // old collect-sort-index percentile pass.
    let latency = Arc::new(obs::Histogram::new());
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let server = Arc::clone(&server);
        let overload_retries = Arc::clone(&overload_retries);
        let verified = Arc::clone(&verified);
        let latency = Arc::clone(&latency);
        let g = g.clone();
        let gsym = gsym.clone();
        let spd = spd.clone();
        let expected_cg = expected_cg.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..jobs {
                let job = job_for(n, t, i);
                let request = Request {
                    tenant: TENANTS[t % TENANTS.len()].into(),
                    // CG floats reassociate under par, so solves stick to
                    // the backends with the sequential-order guarantee.
                    backend: if matches!(job, JobSpec::Cg { .. }) {
                        [BackendSpec::Seq, BackendSpec::Dist(2)][(t + i) % 2]
                    } else {
                        BACKENDS[(t + i) % BACKENDS.len()]
                    },
                    job,
                };
                let t0 = Instant::now();
                let payload = loop {
                    match server.call(request.clone()) {
                        Ok((payload, _meter)) => break payload,
                        Err(ServeError::Overloaded { .. }) => {
                            // Backpressure: the client owns the retry.
                            overload_retries.fetch_add(1, Ordering::Relaxed);
                            std::thread::yield_now();
                        }
                        Err(e) => panic!("job failed: {e}"),
                    }
                };
                latency.record(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                if verify {
                    // Parallel dot reassociates; everything else is exact.
                    let skip_bits = matches!(
                        (&request.job, request.backend),
                        (JobSpec::Dot { .. }, BackendSpec::Par)
                    );
                    if !skip_bits {
                        let expected = if matches!(request.job, JobSpec::Cg { .. }) {
                            expected_cg.clone()
                        } else {
                            expected_payload(&g, &gsym, &spd, &request.job)
                        };
                        assert_eq!(
                            payload,
                            expected,
                            "response diverged from direct Sequential for {:?} on {}",
                            request.job.kind(),
                            request.backend
                        );
                        verified.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread panicked");
    }
    let wall_secs = started.elapsed().as_secs_f64();

    let total_jobs = latency.count() as usize;
    let throughput = total_jobs as f64 / wall_secs;
    let p50 = latency.percentile(50.0) as f64 / 1e6;
    let p99 = latency.percentile(99.0) as f64 / 1e6;
    let stats = server.stats();
    let batched_jobs = stats.batched_jobs.load(Ordering::Relaxed);
    let batched_sweeps = stats.batched_sweeps.load(Ordering::Relaxed);
    let plan_cache_hits = stats.plan_cache_hits.load(Ordering::Relaxed);
    let plan_cache_misses = stats.plan_cache_misses.load(Ordering::Relaxed);
    println!(
        "{total_jobs} jobs in {wall_secs:.3} s -> {throughput:.0} jobs/s, \
         p50 {p50:.3} ms, p99 {p99:.3} ms, {batched_jobs} job(s) in {batched_sweeps} batched sweep(s), \
         plan cache {plan_cache_hits} hit(s) / {plan_cache_misses} miss(es)"
    );
    if verify {
        println!(
            "verify: OK ({} responses bit-identical to direct Sequential)",
            verified.load(Ordering::Relaxed)
        );
    }

    // The service's own observability travels the same path as any job:
    // a `stats` request must come back as one parse-clean JSON token with
    // the latency histograms the workers recorded for this very run.
    let stats_ok = match server.call(Request {
        tenant: "bench".into(),
        backend: BackendSpec::Seq,
        job: JobSpec::Stats,
    }) {
        Ok((Payload::Stats(json), _)) => {
            json.starts_with('{')
                && !json.contains(char::is_whitespace)
                && json.contains("\"jobs_ok\":")
                && json.contains("\"latency_ns.kind.")
        }
        other => {
            eprintln!("stats job returned unexpected {other:?}");
            false
        }
    };
    println!("stats job: {}", if stats_ok { "OK" } else { "FAILED" });

    let mut tenants_json = String::new();
    for (i, tenant) in server.metering().tenants().iter().enumerate() {
        let s = server
            .metering()
            .summary(tenant)
            .expect("listed tenants have summaries");
        let _ = write!(
            tenants_json,
            "{}    {{\"tenant\": \"{tenant}\", \"modeled_secs\": {:.9e}, \
             \"h_bytes\": {:.1}, \"supersteps\": {}}}",
            if i == 0 { "" } else { ",\n" },
            s.total_secs,
            s.total_h_bytes,
            s.supersteps,
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"serve_bench\",\n  \"threads\": {threads},\n  \
         \"jobs_per_thread\": {jobs},\n  \"total_jobs\": {total_jobs},\n  \
         \"n\": {n},\n  \"workers\": {workers},\n  \"queue_bound\": {queue_bound},\n  \
         \"wall_secs\": {wall_secs:.6},\n  \"throughput_jobs_per_sec\": {throughput:.1},\n  \
         \"p50_ms\": {p50:.4},\n  \"p99_ms\": {p99:.4},\n  \
         \"overload_retries\": {},\n  \"batched_jobs\": {batched_jobs},\n  \
         \"batched_sweeps\": {batched_sweeps},\n  \"plan_cache_hits\": {plan_cache_hits},\n  \
         \"plan_cache_misses\": {plan_cache_misses},\n  \"stats_ok\": {stats_ok},\n  \
         \"verified\": {},\n  \"tenants\": [\n{tenants_json}\n  ]\n}}\n",
        overload_retries.load(Ordering::Relaxed),
        if verify {
            verified.load(Ordering::Relaxed).to_string()
        } else {
            "null".to_string()
        },
    );
    std::fs::write(&out_path, &json).expect("writing the JSON report must succeed");
    println!("wrote {out_path} ({} bytes)", json.len());
}
