//! **Figure 5** — percentage of execution time in refinement/restriction
//! (dark) and RBGS (bright), per MG level: shared-memory **Ref** on ARM.
//!
//! Paper result: same dominance as Fig 4 but with more fluctuation across
//! thread counts, attributed to NUMA-unaware allocation.
//!
//! ```text
//! cargo run --release -p hpcg-bench --bin fig5_breakdown_ref_shared \
//!     [--size 32] [--iters 5] [--threads 1,2,4] [--backend seq|par]
//! ```

use graphblas::BackendKind;
use hpcg_bench::breakdown::{print_breakdown, shared_breakdown, Impl};
use hpcg_bench::cli::Args;

fn main() {
    let args = Args::from_env();
    let size = args.get_usize("size", 32);
    let iters = args.get_usize("iters", 5);
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = args.get_usize_list("threads", &[1, host.max(2) / 2, host]);

    let backend = args.get_backend(BackendKind::Parallel);
    let rows = shared_breakdown(Impl::Reference, backend, &threads, size, iters);
    print_breakdown(
        "Fig 5: shared-memory Ref kernel breakdown (measured)",
        &rows,
    );

    let smoother_total: f64 = rows
        .first()
        .map(|r| r.per_level.iter().map(|&(_, s)| s).sum())
        .unwrap_or(0.0);
    println!("\nshape check: aggregated RBGS share {smoother_total:.1}% (paper: >50%)");
}
