//! Ablation: smoothing power of SGS vs RBGS per sweep (paper §III-A).
//!
//! RBGS relaxes Gauss-Seidel's dependency order to expose parallelism "at
//! the cost of a higher number of iterations to achieve the same smoothing
//! effect" [22]. This harness measures that cost: error reduction factor
//! per symmetric sweep on the HPCG system, for the natural-order SGS and
//! the 8-color RBGS, plus the error after k sweeps of each.
//!
//! ```text
//! cargo run --release -p hpcg-bench --bin smoother_convergence [--size 16] [--sweeps 10]
//! ```

use hpcg::coloring::Coloring;
use hpcg::problem::{build_rhs, build_stencil_matrix, RhsVariant};
use hpcg::smoother::{rbgs_ref, sgs};
use hpcg::Grid3;
use hpcg_bench::cli::Args;
use hpcg_bench::table::Table;

fn error_norm(x: &[f64]) -> f64 {
    // Exact solution of the reference rhs is the ones vector.
    x.iter().map(|&v| (v - 1.0) * (v - 1.0)).sum::<f64>().sqrt()
}

fn main() {
    let args = Args::from_env();
    let size = args.get_usize("size", 16);
    let sweeps = args.get_usize("sweeps", 10);

    let a = build_stencil_matrix(Grid3::cube(size));
    let diag: Vec<f64> = (0..a.nrows()).map(|i| a.get(i, i).unwrap()).collect();
    let classes = Coloring::greedy(&a).classes();
    let b = build_rhs(&a, RhsVariant::Reference);
    let bs = b.as_slice();

    let mut x_sgs = vec![0.0f64; a.nrows()];
    let mut x_rb = vec![0.0f64; a.nrows()];

    println!("smoothing power on a {size}³ HPCG system (error vs the exact solution):\n");
    let mut t = Table::new(&[
        "sweep",
        "SGS error",
        "RBGS error",
        "SGS factor",
        "RBGS factor",
    ]);
    let (mut prev_s, mut prev_r) = (error_norm(&x_sgs), error_norm(&x_rb));
    for k in 1..=sweeps {
        sgs::sgs_symmetric(&a, &diag, bs, &mut x_sgs);
        rbgs_ref::rbgs_symmetric(&a, &diag, &classes, bs, &mut x_rb);
        let (es, er) = (error_norm(&x_sgs), error_norm(&x_rb));
        t.row(vec![
            k.to_string(),
            format!("{es:.3e}"),
            format!("{er:.3e}"),
            format!("{:.3}", es / prev_s),
            format!("{:.3}", er / prev_r),
        ]);
        prev_s = es;
        prev_r = er;
    }
    print!("{}", t.render());

    println!("\nshape check (paper §III-A): RBGS needs more sweeps for equal smoothing,");
    println!("i.e. its per-sweep factor is ≥ SGS's — but each RBGS sweep parallelizes");
    println!("across the ~n/8 rows of a color while SGS is inherently sequential.");
    let ratio = prev_r / prev_s;
    println!("error after {sweeps} sweeps: RBGS/SGS = {ratio:.2} (≥ 1 expected)");
}
