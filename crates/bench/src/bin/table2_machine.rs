//! **Table II** — experimental machine details.
//!
//! The paper lists its two machines; we cannot reproduce hardware, so this
//! harness prints the paper's rows for reference alongside what this run
//! actually executes on (from `/proc` + `sysfs`).
//!
//! ```text
//! cargo run --release -p hpcg-bench --bin table2_machine
//! ```

use hpcg_bench::hostinfo::HostInfo;
use hpcg_bench::table::Table;

fn main() {
    let mut t = Table::new(&["property", "paper x86", "paper ARM", "this host"]);
    let host = HostInfo::gather();
    let rows: Vec<(&str, &str, &str, String)> = vec![
        (
            "CPU",
            "Xeon Gold 6238T",
            "Kunpeng 920-4826",
            host.cpu_model.clone(),
        ),
        (
            "cores",
            "22 /socket",
            "48 /socket",
            host.logical_cpus.to_string(),
        ),
        ("threads", "44 (HT)", "48", host.logical_cpus.to_string()),
        ("max freq (GHz)", "3.70", "2.6", "-".into()),
        (
            "L3 cache",
            "30.25 MB /socket",
            "48 MB /socket",
            host.l3_cache.clone(),
        ),
        ("memory channels", "6", "8", "-".into()),
        ("NUMA domains", "1 /socket", "2 /socket", "-".into()),
        ("sockets", "2", "2", "-".into()),
        ("RAM (GB)", "192", "512", format!("{:.1}", host.mem_gib)),
        ("attained BW (GB/s)", "192", "246.3", "-".into()),
        (
            "network",
            "ConnectX-5 2x100Gb/s",
            "ConnectX-5 2x100Gb/s",
            "simulated (bsp crate)".into(),
        ),
        ("OS", "Ubuntu 20.04", "Ubuntu 20.04", host.os.clone()),
    ];
    for (prop, x86, arm, this) in rows {
        t.row(vec![
            prop.to_string(),
            x86.to_string(),
            arm.to_string(),
            this,
        ]);
    }
    println!("Table II: the paper's machines vs this host\n");
    print!("{}", t.render());
    println!("\nThe strong-scaling harnesses (fig1/fig2) calibrate their models against");
    println!("this host and extrapolate to the paper's machines; the distributed");
    println!("harnesses (fig3/fig6/fig7) use the simulated cluster in `bsp`.");
}
