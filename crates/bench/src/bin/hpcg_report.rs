//! The benchmark binary: runs HPCG end to end (setup, validation, timed
//! run) and prints the official-style summary for both implementations.
//!
//! The GraphBLAS (ALP) implementation executes on the runtime-selected
//! backend: `--backend seq|par|dist[:<nodes>]` (or `GRB_BACKEND=...`),
//! dispatched through one [`graphblas::DynCtx`] — the same binary drives
//! the paper's ALP-vs-Ref comparison on any backend. On the distributed
//! backend `--nodes N` sizes the simulated cluster and the summary gains
//! the modeled BSP wall-clock (the Fig 3 y-axis) next to the measured
//! single-machine time.
//!
//! `--pipeline on|off` (default: on) toggles deferred (fused) execution of
//! the ALP hot loops — the nonblocking-execution mode of paper §VI. Both
//! modes are bit-identical; the toggle exists for ablation.
//!
//! ```text
//! cargo run --release -p hpcg-bench --bin hpcg_report \
//!     [--size 32] [--iters 50] [--threads N] \
//!     [--backend seq|par|dist[:<nodes>]] [--nodes N] [--pipeline on|off] \
//!     [--trace out.json]
//! ```
//!
//! `--trace PATH` records a span for every kernel, plan event, and (on
//! `dist`) superstep across the whole run and writes Chrome trace-event
//! JSON to PATH — open it in Perfetto or `chrome://tracing`.

use graphblas::{BackendKind, DynCtx};
use hpcg::driver::{flops_per_iteration, run_with_rhs, RunConfig};
use hpcg::reporting::render_report;
use hpcg::{validate, GrbHpcg, Grid3, Problem, RefHpcg, RhsVariant};
use hpcg_bench::cli::Args;

fn main() {
    let args = Args::from_env();
    let size = args.get_usize("size", 32);
    let iters = args.get_usize("iters", 50);
    if let Some(t) = args
        .get_str("threads")
        .and_then(|s| s.parse::<usize>().ok())
    {
        rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build_global()
            .ok();
    }
    let trace_path = args.get_str("trace").map(str::to_string);
    if trace_path.is_some() {
        obs::set_enabled(true);
    }
    let exec = DynCtx::runtime(args.get_backend(BackendKind::Parallel));
    let pipeline = match args.get_str("pipeline").unwrap_or("on") {
        "on" | "true" | "1" => true,
        "off" | "false" | "0" => false,
        other => {
            eprintln!("error: invalid --pipeline {other:?} (expected on|off)");
            std::process::exit(2);
        }
    };
    println!(
        "ALP backend: {} ({} thread(s)), pipeline {}\n",
        exec.backend_name(),
        exec.threads(),
        if pipeline { "on" } else { "off" },
    );

    let problem = Problem::build_with(Grid3::cube(size), 4, RhsVariant::Reference)
        .expect("size must be divisible by 8");
    let flops = flops_per_iteration(&problem);
    let config = RunConfig {
        iterations: iters,
        preconditioned: true,
    };

    let b = problem.b.clone();
    let mut alp = GrbHpcg::with_ctx(problem.clone(), exec);
    alp.set_pipeline(pipeline);
    let v = validate(&mut alp, &b, 500);
    if let BackendKind::Dist(d) = exec.kind() {
        // Validation already ran through the cluster; the modeled numbers
        // below must cover exactly the timed run.
        d.reset_costs();
    }
    let (run, _) = run_with_rhs(&mut alp, &b, flops, config);
    println!("{}", render_report(&problem, &run, Some(&v)));
    if let BackendKind::Dist(d) = exec.kind() {
        println!(
            "distributed model ({} nodes): modeled BSP wall-clock {:.3} s \
             vs measured {:.3} s ({:.2} MB communicated, {} supersteps, \
             {:.3} ms exchange hidden behind compute)\n",
            d.nodes(),
            d.total_modeled_secs(),
            run.total_secs,
            d.total_h_bytes() / 1e6,
            d.supersteps(),
            d.total_overlap_hidden_secs() * 1e3,
        );
        print!("{}", d.cost_summary());
        println!();
    }

    let b_vec = problem.b.as_slice().to_vec();
    let mut reference = RefHpcg::new(problem.clone());
    let v_ref = validate(&mut reference, &b_vec, 500);
    let (run_ref, _) = run_with_rhs(&mut reference, &b_vec, flops, config);
    println!("{}", render_report(&problem, &run_ref, Some(&v_ref)));

    if let Some(path) = trace_path {
        let spans = obs::span_count();
        std::fs::write(&path, obs::chrome_trace()).expect("writing the trace must succeed");
        println!("wrote {spans} span(s) to {path} (open in Perfetto / chrome://tracing)");
    }
}
