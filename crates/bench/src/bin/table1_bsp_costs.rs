//! **Table I** — BSP asymptotic cost components of the distributed
//! implementations.
//!
//! The paper tabulates, per `mxv`, computation `n/p`, communication
//! `∛(n²/p²)` (Ref) vs `n(p−1)/p ≈ n` (ALP), and `Θ(1)` synchronization.
//! This harness *measures* those quantities from the BSP simulator — the
//! recorded per-node flops, the recorded h-relations, the superstep count
//! — for a sweep of node counts at fixed `n`, and prints them next to the
//! closed forms so the fit is visible.
//!
//! ```text
//! cargo run --release -p hpcg-bench --bin table1_bsp_costs [--size 16] [--nodes 2,4,8]
//! ```

use bsp::machine::MachineParams;
use graphblas::Vector;
use hpcg::distributed::{AlpDistHpcg, RefDistHpcg};
use hpcg::{Grid3, Kernels, Problem, RhsVariant};
use hpcg_bench::cli::Args;
use hpcg_bench::table::{fmt_bytes, Table};

fn main() {
    let args = Args::from_env();
    let size = args.get_usize("size", 16);
    let nodes_list = args.get_usize_list("nodes", &[2, 4, 8]);
    let problem = Problem::build_with(Grid3::cube(size), 1, RhsVariant::Reference)
        .expect("cube size is always coarsenable at 1 level");
    let n = problem.n();

    println!("Table I reproduction: per-mxv BSP cost components, n = {n}");
    println!("(measured = recorded by the simulator; closed form = paper's Table I)\n");

    let mut t = Table::new(&[
        "p",
        "comp/node",
        "n/p roofline",
        "Ref comm",
        "cbrt(n^2/p^2) model",
        "ALP comm",
        "n(p-1)/p model",
        "syncs",
    ]);

    let machine = MachineParams::arm_cluster();
    for &p in &nodes_list {
        // One spmv through each distributed implementation.
        let mut alp = AlpDistHpcg::new(problem.clone(), p, machine);
        let x = Vector::filled(n, 1.0);
        let mut y = alp.alloc(0);
        alp.spmv(0, &mut y, &x);
        let alp_step = alp.tracker().steps()[0];

        let mut rd = RefDistHpcg::new(problem.clone(), p, machine);
        let xv = vec![1.0; n];
        let mut yv = rd.alloc(0);
        rd.spmv(0, &mut yv, &xv);
        let ref_step = rd.tracker().steps()[0];

        // Roofline model of the per-node work: 2 flops/nonzero over the
        // CSR stream (the measured column is the simulator's own roofline).
        let nnz_per_node = problem.levels[0].a.nnz() as f64 / p as f64;
        let rows_per_node = n as f64 / p as f64;
        let comp_model = machine.compute_time(
            2.0 * nnz_per_node,
            nnz_per_node * 20.0 + rows_per_node * 16.0,
        );
        let ref_model = (n as f64).powf(2.0 / 3.0) / (p as f64).powf(2.0 / 3.0) * 8.0;
        let alp_model = (n as f64) * (p as f64 - 1.0) / p as f64 * 8.0;
        t.row(vec![
            p.to_string(),
            format!("{:.2e}s", alp_step.compute_secs),
            format!("{comp_model:.2e}s"),
            fmt_bytes(ref_step.h_bytes),
            fmt_bytes(ref_model),
            fmt_bytes(alp_step.h_bytes),
            fmt_bytes(alp_model),
            "1".to_string(),
        ]);
    }
    print!("{}", t.render());

    // The asymptotic fit needs node counts that factor into cubes (the
    // paper's Θ assumes pd ≈ ∛p) and large enough that interior nodes with
    // all 26 neighbors exist — the max-h node is a corner below p = 27.
    let fit_nodes = [27usize, 64, 216];
    let fit_size = 36; // divisible by 3, 4 and 6
    let fit_problem =
        Problem::build_with(Grid3::cube(fit_size), 1, RhsVariant::Reference).expect("36^3 builds");
    let fit_n = fit_problem.n();
    println!(
        "\nscaling fit (log-log slope of comm bytes vs p, cube node counts {fit_nodes:?}, n = {fit_n}):"
    );
    let slope = |comms: &[(usize, f64)]| -> f64 {
        let k = comms.len() as f64;
        let (mut sx, mut sy, mut sxy, mut sxx) = (0.0, 0.0, 0.0, 0.0);
        for &(p, c) in comms {
            let (x, y) = ((p as f64).ln(), c.max(1e-300).ln());
            sx += x;
            sy += y;
            sxy += x * y;
            sxx += x * x;
        }
        (k * sxy - sx * sy) / (k * sxx - sx * sx)
    };
    let mut ref_pts = Vec::new();
    let mut alp_pts = Vec::new();
    for &p in &fit_nodes {
        let mut rd = RefDistHpcg::new(fit_problem.clone(), p, machine);
        let xv = vec![1.0; fit_n];
        let mut yv = rd.alloc(0);
        rd.spmv(0, &mut yv, &xv);
        ref_pts.push((p, rd.tracker().steps()[0].h_bytes));
        let mut alp = AlpDistHpcg::new(fit_problem.clone(), p, machine);
        let x = Vector::filled(fit_n, 1.0);
        let mut y = alp.alloc(0);
        alp.spmv(0, &mut y, &x);
        alp_pts.push((p, alp.tracker().steps()[0].h_bytes));
    }
    println!(
        "  Ref halo slope ≈ {:.2} (paper: -2/3 ≈ -0.67)",
        slope(&ref_pts)
    );
    println!(
        "  ALP allgather slope ≈ {:.2} (paper: (p-1)/p → ~0, slightly positive)",
        slope(&alp_pts)
    );
}
