//! Min-of-N probe for the fusion acceptance gate — a noise-robust
//! complement to the `fusion_ablation` criterion bench.
//!
//! On shared/1-CPU containers the criterion medians drift between arms
//! (they run sequentially, seconds apart); the minimum of many direct
//! calls is stable to ~1 %. This probe prints, for each fusable pair, the
//! hand-written single pass, the raw fused `Exec` kernel, the full
//! record-fuse-finish pipeline, and the unfused eager pair, and writes
//! the same numbers as JSON — the shared-memory counterpart of
//! `BENCH_dist.json`, so both backends have a diffable perf file:
//!
//! ```text
//! cargo run --release -p hpcg-bench --bin perf_probe -- \
//!     [--size 24] [--reps 300] [--out BENCH_shared.json]
//! ```
//!
//! Acceptance: `pipeline` within 10 % of `hand` (the probe regularly shows
//! them equal) and ahead of `unfused`.
//!
//! The report stamps the host (Table II analogue) and an ISO timestamp,
//! and ends with an `obs_overhead` entry measuring the tracing-disabled
//! instrumentation cost: the per-call price of the span probe every
//! `Exec` kernel entry now carries, relative to one kernel invocation.
//! ci.sh gates its ratio at ≤ 1.01.

use graphblas::{ctx, Exec, PlusTimes, Sequential, Vector};
use hpcg::fused::{
    axpy_norm_fused, axpy_norm_hand, axpy_norm_replay, build_axpy_norm_plan, build_spmv_dot_plan,
    spmv_dot_fused, spmv_dot_hand, spmv_dot_replay,
};
use hpcg::problem::build_stencil_matrix;
use hpcg::Grid3;
use hpcg_bench::cli::Args;
use hpcg_bench::hostinfo::{iso_timestamp_utc, HostInfo};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

fn min_time<F: FnMut() -> f64>(mut f: F, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0.0;
    for _ in 0..reps {
        let t0 = Instant::now();
        sink += f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    black_box(sink);
    best
}

/// One probed kernel: its name, working-set descriptor, and arm timings
/// (seconds). `pipe` records, fuses and runs the op graph every rep —
/// the record-every-iteration cost; `replay` runs a plan compiled once
/// outside the loop, so the gap is the amortized record+fuse overhead.
struct Probe {
    kernel: &'static str,
    elements: usize,
    hand: f64,
    raw: f64,
    pipe: f64,
    replay: f64,
    unfused: f64,
}

fn main() {
    let args = Args::from_env();
    let size = args.get_usize("size", 24);
    let reps = args.get_usize("reps", 300);
    let out_path = args
        .get_str("out")
        .unwrap_or("BENCH_shared.json")
        .to_string();
    let exec = ctx::<Sequential>();

    let a = build_stencil_matrix(Grid3::cube(size));
    let n = a.nrows();
    let x = Vector::from_dense((0..n).map(|i| (i % 17) as f64).collect());
    let mut y = Vector::zeros(n);

    let hand = min_time(|| spmv_dot_hand(black_box(&a), black_box(&x), &mut y), reps);
    let raw = min_time(
        || {
            Sequential
                .run_spmv_dot::<f64, PlusTimes>(
                    &mut y,
                    black_box(&a),
                    black_box(&x),
                    Some(&x),
                    false,
                )
                .unwrap()
        },
        reps,
    );
    let pipe = min_time(
        || spmv_dot_fused(exec, black_box(&a), black_box(&x), &mut y),
        reps,
    );
    let spmv_plan = build_spmv_dot_plan(exec, n);
    let replay = min_time(
        || spmv_dot_replay(&spmv_plan, black_box(&a), black_box(&x), &mut y),
        reps,
    );
    // Replay must be bit-identical to recording the graph fresh.
    {
        let mut y_rec = Vector::zeros(n);
        let mut y_rep = Vector::zeros(n);
        let d_rec = spmv_dot_fused(exec, &a, &x, &mut y_rec);
        let d_rep = spmv_dot_replay(&spmv_plan, &a, &x, &mut y_rep);
        assert_eq!(d_rec.to_bits(), d_rep.to_bits(), "spmv_dot replay diverged");
        assert_eq!(
            y_rec.as_slice(),
            y_rep.as_slice(),
            "spmv_dot replay diverged"
        );
    }
    let unfused = min_time(
        || {
            exec.mxv(black_box(&a), black_box(&x)).into(&mut y).unwrap();
            exec.dot(&x, &y).compute().unwrap()
        },
        reps,
    );
    println!(
        "spmv+dot ({} rows, {} nnz, min of {reps}):\n  hand {:9.1} us\n  raw  {:9.1} us\n  pipe {:9.1} us ({:+.1}% vs hand)\n  plan {:9.1} us ({:+.1}% vs pipe)\n  unf  {:9.1} us",
        n,
        a.nnz(),
        hand * 1e6,
        raw * 1e6,
        pipe * 1e6,
        (pipe / hand - 1.0) * 100.0,
        replay * 1e6,
        (replay / pipe - 1.0) * 100.0,
        unfused * 1e6,
    );
    let spmv_probe = Probe {
        kernel: "spmv_dot",
        elements: a.nnz(),
        hand,
        raw,
        pipe,
        replay,
        unfused,
    };

    let m = n * 8;
    let q = Vector::from_dense((0..m).map(|i| (i % 7) as f64).collect());
    let mut r = Vector::from_dense((0..m).map(|i| (i % 13) as f64).collect());
    let hand = min_time(|| axpy_norm_hand(&mut r, 0.5, black_box(&q)), reps);
    // The raw fused kernel computes `r += alpha*q` + norm; `-0.5` matches
    // the hand/pipeline arms' `r -= 0.5*q` convention.
    let raw = min_time(
        || {
            Sequential
                .run_axpy_norm::<f64, PlusTimes>(&mut r, -0.5, black_box(&q))
                .unwrap()
        },
        reps,
    );
    let pipe = min_time(|| axpy_norm_fused(exec, &mut r, 0.5, black_box(&q)), reps);
    let axpy_plan = build_axpy_norm_plan(exec, m);
    let replay = min_time(
        || axpy_norm_replay(&axpy_plan, &mut r, 0.5, black_box(&q)),
        reps,
    );
    {
        let mut r_rec = Vector::from_dense((0..m).map(|i| (i % 13) as f64).collect::<Vec<_>>());
        let mut r_rep = r_rec.clone();
        let n_rec = axpy_norm_fused(exec, &mut r_rec, 0.5, &q);
        let n_rep = axpy_norm_replay(&axpy_plan, &mut r_rep, 0.5, &q);
        assert_eq!(
            n_rec.to_bits(),
            n_rep.to_bits(),
            "axpy_norm replay diverged"
        );
        assert_eq!(
            r_rec.as_slice(),
            r_rep.as_slice(),
            "axpy_norm replay diverged"
        );
    }
    let unfused = min_time(
        || {
            exec.axpy(&mut r, -0.5, black_box(&q)).unwrap();
            exec.norm2_squared(&r).unwrap()
        },
        reps,
    );
    println!(
        "axpy+norm ({m} elements, min of {reps}):\n  hand {:9.1} us\n  raw  {:9.1} us\n  pipe {:9.1} us ({:+.1}% vs hand)\n  plan {:9.1} us ({:+.1}% vs pipe)\n  unf  {:9.1} us",
        hand * 1e6,
        raw * 1e6,
        pipe * 1e6,
        (pipe / hand - 1.0) * 100.0,
        replay * 1e6,
        (replay / pipe - 1.0) * 100.0,
        unfused * 1e6,
    );
    let axpy_probe = Probe {
        kernel: "axpy_norm",
        elements: m,
        hand,
        raw,
        pipe,
        replay,
        unfused,
    };

    // Tracing-off overhead. Every `Exec` kernel entry now leads with one
    // `obs::span_enter` whose disabled path is a single relaxed atomic
    // load. Kernel-vs-kernel A/B cannot resolve that (container noise and
    // the hand/exec codegen gap are both orders of magnitude larger), so
    // measure the probe itself — a tight amortized loop of the exact call
    // the kernels gained — and relate it to one kernel invocation. The
    // ci.sh gate holds the ratio at ≤ 1.01; it lands at ~1.0001.
    assert!(
        !obs::enabled(),
        "the overhead probe measures the tracing-disabled path"
    );
    let span_probe_secs = {
        const CALLS: u32 = 1 << 20;
        let mut best = f64::INFINITY;
        for _ in 0..8 {
            let t0 = Instant::now();
            for _ in 0..CALLS {
                black_box(obs::span_enter(black_box("probe"), "probe"));
            }
            best = best.min(t0.elapsed().as_secs_f64() / f64::from(CALLS));
        }
        best
    };
    let kernel_secs = spmv_probe.raw;
    let obs_ratio = (kernel_secs + span_probe_secs) / kernel_secs;
    println!(
        "obs overhead (tracing off): span probe {:.2} ns/call on a {:.1} us \
         spmv_dot kernel (ratio {obs_ratio:.6})",
        span_probe_secs * 1e9,
        kernel_secs * 1e6,
    );

    let mut kernels_json = String::new();
    let mut amortization_json = String::new();
    for (i, p) in [spmv_probe, axpy_probe].iter().enumerate() {
        let _ = write!(
            kernels_json,
            "{}    {{\n      \"kernel\": \"{}\",\n      \"elements\": {},\n      \
             \"hand_secs\": {:.9e},\n      \"raw_exec_secs\": {:.9e},\n      \
             \"pipeline_secs\": {:.9e},\n      \"replay_secs\": {:.9e},\n      \
             \"unfused_secs\": {:.9e},\n      \"pipeline_vs_hand\": {:.4}\n    }}",
            if i == 0 { "" } else { ",\n" },
            p.kernel,
            p.elements,
            p.hand,
            p.raw,
            p.pipe,
            p.replay,
            p.unfused,
            p.pipe / p.hand,
        );
        // `record_secs` re-records + fuses + runs the op graph each rep;
        // `replay_secs` runs the once-compiled plan. The gate: replay
        // must never cost more than re-recording.
        let _ = write!(
            amortization_json,
            "{}    {{\"kernel\": \"{}\", \"record_secs\": {:.9e}, \
             \"replay_secs\": {:.9e}, \"speedup\": {:.4}}}",
            if i == 0 { "" } else { ",\n" },
            p.kernel,
            p.pipe,
            p.replay,
            p.pipe / p.replay,
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"perf_probe\",\n  \"backend\": \"sequential (shared memory)\",\n  \
         \"timestamp\": \"{}\",\n  \"host\": {},\n  \
         \"grid\": {size},\n  \"n\": {n},\n  \"reps\": {reps},\n  \"timing\": \"min of reps\",\n  \
         \"kernels\": [\n{kernels_json}\n  ],\n  \
         \"amortization\": [\n{amortization_json}\n  ],\n  \
         \"obs_overhead\": {{\"kernel\": \"spmv_dot\", \
         \"kernel_secs\": {kernel_secs:.9e}, \
         \"span_probe_secs\": {span_probe_secs:.9e}, \"ratio\": {obs_ratio:.6}}}\n}}\n",
        iso_timestamp_utc(),
        HostInfo::gather().to_json(),
    );
    std::fs::write(&out_path, &json).expect("writing the JSON report must succeed");
    println!("wrote {out_path} ({} bytes)", json.len());
}
