//! **Figure 6** — kernel breakdown per MG level: distributed **ALP**,
//! 2..7 cluster nodes (modeled on the simulated BSP cluster).
//!
//! Paper result: ALP spends a visibly larger share in restriction/
//! refinement than Ref does (its grid transfers are `mxv`s that pay a
//! full allgather + synchronization), and the shares stay close across
//! node counts.
//!
//! ```text
//! cargo run --release -p hpcg-bench --bin fig6_breakdown_alp_dist \
//!     [--local 16] [--iters 3] [--nodes 2,3,4,5,6,7]
//! ```

use hpcg_bench::breakdown::{dist_breakdown, print_breakdown, Impl};
use hpcg_bench::cli::Args;

fn main() {
    let args = Args::from_env();
    let local = args.get_usize("local", 16);
    let iters = args.get_usize("iters", 3);
    let nodes = args.get_usize_list("nodes", &[2, 3, 4, 5, 6, 7]);

    let rows = dist_breakdown(Impl::Alp, &nodes, local, iters);
    print_breakdown("Fig 6: distributed ALP kernel breakdown (modeled)", &rows);

    if let Some(r) = rows.first() {
        let rr_total: f64 = r.per_level.iter().map(|&(rr, _)| rr).sum();
        println!(
            "\nshape check: restrict/refine share {rr_total:.1}% (paper: larger than Ref's, Fig 7)"
        );
    }
}
