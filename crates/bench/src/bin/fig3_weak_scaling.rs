//! **Figure 3** — weak scaling on the (simulated) ARM cluster.
//!
//! Paper setup: 2..7 nodes, input size growing proportionally to the node
//! count, fixed iterations. Result: Ref stays flat (≤5 % variation across
//! node counts) while ALP's execution time grows linearly with nodes —
//! the Table I communication asymptotics made visible.
//!
//! Additionally runs the §VII-B(ii) what-if as a *real* third series: the
//! same ALP algorithm under a 2D block distribution
//! (`(pr−1+pc−1)·n/p` exchange instead of `(p−1)·n/p`), the partial
//! mitigation the paper proposes as future work.
//!
//! ```text
//! cargo run --release -p hpcg-bench --bin fig3_weak_scaling \
//!     [--local 16] [--iters 5] [--nodes 2,3,4,5,6,7]
//! ```

use bsp::machine::MachineParams;
use hpcg::distributed::{run_distributed, AlpDistHpcg, RefDistHpcg};
use hpcg::{Grid3, Problem, RhsVariant};
use hpcg_bench::breakdown::weak_grid;
use hpcg_bench::cli::Args;
use hpcg_bench::table::{fmt_bytes, fmt_secs, Table};

fn main() {
    let args = Args::from_env();
    let local = args.get_usize("local", 16);
    let iters = args.get_usize("iters", 5);
    let nodes_list = args.get_usize_list("nodes", &[2, 3, 4, 5, 6, 7]);
    let machine = MachineParams::arm_cluster();

    println!(
        "weak scaling: {local}^3 points per node, {iters} CG iterations, simulated ARM cluster\n"
    );
    let mut t = Table::new(&[
        "nodes",
        "n",
        "Ref time",
        "ALP time",
        "ALP-2D time",
        "ALP/Ref",
        "Ref comm",
        "ALP comm",
        "ALP-2D comm",
    ]);

    let mut series: Vec<(usize, f64, f64, f64)> = Vec::new();
    for &p in &nodes_list {
        let (nx, ny, nz) = weak_grid(p, local);
        let problem = Problem::build_with(Grid3::new(nx, ny, nz), 4, RhsVariant::Reference)
            .expect("weak-scaling grid is divisible by 8");
        let n = problem.n();

        let b_grb = problem.b.clone();
        let mut alp = AlpDistHpcg::new(problem.clone(), p, machine);
        let (ra, _) = run_distributed(&mut alp, &b_grb, iters);

        let mut alp2d = AlpDistHpcg::new_2d(problem.clone(), p, machine);
        let (ra2, _) = run_distributed(&mut alp2d, &b_grb, iters);

        let b_vec = problem.b.as_slice().to_vec();
        let mut rd = RefDistHpcg::new(problem, p, machine);
        let (rr, _) = run_distributed(&mut rd, &b_vec, iters);

        t.row(vec![
            p.to_string(),
            n.to_string(),
            fmt_secs(rr.modeled_secs),
            fmt_secs(ra.modeled_secs),
            fmt_secs(ra2.modeled_secs),
            format!("{:.2}x", ra.modeled_secs / rr.modeled_secs),
            fmt_bytes(rr.comm_bytes),
            fmt_bytes(ra.comm_bytes),
            fmt_bytes(ra2.comm_bytes),
        ]);
        series.push((p, rr.modeled_secs, ra.modeled_secs, ra2.modeled_secs));
    }
    print!("{}", t.render());

    println!("\nshape checks (paper §V-B and §VII-B):");
    if series.len() >= 2 {
        let ref_min = series
            .iter()
            .map(|&(_, r, _, _)| r)
            .fold(f64::INFINITY, f64::min);
        let ref_max = series.iter().map(|&(_, r, _, _)| r).fold(0.0f64, f64::max);
        println!(
            "  Ref flatness: max/min = {:.3} (paper: within ~5%)",
            ref_max / ref_min
        );
        let (p0, _, a0, _) = series[0];
        let (p1, _, a1, _) = *series.last().unwrap();
        println!(
            "  ALP growth {}→{} nodes: {:.2}x (paper: grows ~linearly with p)",
            p0,
            p1,
            a1 / a0
        );
        let increments: Vec<f64> = series.windows(2).map(|w| w[1].2 - w[0].2).collect();
        let max_inc = increments.iter().fold(0.0f64, |a, &b| a.max(b));
        let min_inc = increments.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        println!(
            "  ALP per-node increment spread: max/min = {:.2} (1.0 = perfectly linear)",
            max_inc / min_inc
        );
        let all_between = series
            .iter()
            .all(|&(_, r, a, a2)| a2 <= a + 1e-12 && a2 >= r - 1e-12);
        println!(
            "  2D layout sits between Ref and 1D ALP at every node count: {all_between} (§VII-B: partial mitigation)"
        );
    }
}
