//! Machine-readable sweep of the sparse-frontier graph subsystem.
//!
//! Generates Graph500-style RMAT graphs over a list of scales, runs BFS
//! from the highest-degree vertex both ways — the dense-vector baseline
//! and the direction-optimizing sparse-frontier path — on every backend,
//! hard-asserts the level vectors identical, and writes TEPS plus the
//! push/pull switch counts and the distributed communication volumes to
//! `BENCH_graph.json`. The `ci.sh` smoke gate asserts nonzero TEPS and
//! that the heuristic exercised **both** frontier modes (push on the
//! sparse fringe, pull once the hub frontier goes dense), and that the
//! sparse path communicates measurably less than the dense baseline on
//! the simulated cluster.
//!
//! ```text
//! cargo run --release -p hpcg-bench --bin graph_report -- \
//!     [--scales 8,10] [--edge-factor 8] [--seed 42] [--nodes 4] \
//!     [--out BENCH_graph.json] [--trace out.json]
//! ```
//!
//! `--trace PATH` records spans across the sweep and writes Chrome
//! trace-event JSON to PATH (open in Perfetto / `chrome://tracing`).

use graphblas::algorithms::{bfs_levels_dense, bfs_levels_on};
use graphblas::{ctx, ctx_on, BackendKind, Distributed, GraphMatrix, Parallel, Sequential};
use hpcg_bench::cli::Args;
use hpcg_bench::rmat::{rmat_adjacency, RmatConfig};
use hpcg_bench::table::Table;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let scales = args.get_usize_list("scales", &[8, 10]);
    let edge_factor = args.get_usize("edge-factor", 8);
    let seed = args.get_usize("seed", 42) as u64;
    let nodes = args.get_usize("nodes", 4).max(2);
    let out_path = args
        .get_str("out")
        .unwrap_or("BENCH_graph.json")
        .to_string();
    let trace_path = args.get_str("trace").map(str::to_string);
    if trace_path.is_some() {
        obs::set_enabled(true);
    }

    println!(
        "graph sweep: RMAT scales {scales:?}, edge factor {edge_factor}, seed {seed}, \
         dist:{nodes} for the communication comparison\n"
    );
    let mut table = Table::new(&[
        "scale",
        "vertices",
        "edges",
        "rounds",
        "push/pull",
        "sparse",
        "dense",
        "MTEPS",
        "dist h sparse/dense",
    ]);

    let cluster = Distributed::new(nodes);
    let mut entries = String::new();
    for (i, &scale) in scales.iter().enumerate() {
        let a = rmat_adjacency(RmatConfig {
            scale: scale as u32,
            edge_factor,
            seed,
        });
        let g = GraphMatrix::from_csr(a.clone());
        let n = a.nrows();
        let edges = a.nnz() / 2;
        // Root at the biggest hub so the traversal covers the giant
        // component (isolated fringe vertices stay at level −1).
        let source = (0..n).max_by_key(|&v| a.row(v).0.len()).unwrap_or(0);

        // Dense baseline and sparse-frontier run, timed on Sequential.
        let t0 = Instant::now();
        let dense = bfs_levels_dense(ctx::<Sequential>(), &a, source).expect("dense bfs");
        let dense_secs = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let (sparse, stats) = bfs_levels_on(ctx::<Sequential>(), &g, source).expect("sparse bfs");
        let sparse_secs = t0.elapsed().as_secs_f64();
        assert_eq!(
            sparse, dense,
            "sparse-frontier BFS diverged at scale {scale}"
        );

        // Bit-identical on the other two backends as well — the whole
        // subsystem rides one Exec surface.
        let (par, par_stats) = bfs_levels_on(ctx::<Parallel>(), &g, source).expect("par bfs");
        assert_eq!(par, dense, "parallel sparse BFS diverged at scale {scale}");
        assert_eq!(par_stats, stats, "backends disagreed on frontier modes");
        let (dist, _) =
            bfs_levels_on(ctx_on(BackendKind::Dist(cluster)), &g, source).expect("dist bfs");
        assert_eq!(
            dist, dense,
            "distributed sparse BFS diverged at scale {scale}"
        );
        let dist_sparse_h: f64 = cluster.take_steps().iter().map(|s| s.h_bytes).sum();
        let _ = bfs_levels_dense(ctx_on(BackendKind::Dist(cluster)), &a, source)
            .expect("dist dense bfs");
        let dist_dense_h: f64 = cluster.take_steps().iter().map(|s| s.h_bytes).sum();

        // Graph500-style TEPS: edges incident to reached vertices (each
        // undirected edge counted once) over the sparse traversal time.
        let traversed: usize = (0..n)
            .filter(|&v| dense[v] >= 0)
            .map(|v| a.row(v).0.len())
            .sum::<usize>()
            / 2;
        let teps = traversed as f64 / sparse_secs;
        let rounds = stats.steps();

        table.row(vec![
            scale.to_string(),
            n.to_string(),
            edges.to_string(),
            rounds.to_string(),
            format!("{}/{}", stats.push_steps, stats.pull_steps),
            format!("{:.3} ms", sparse_secs * 1e3),
            format!("{:.3} ms", dense_secs * 1e3),
            format!("{:.2}", teps / 1e6),
            format!("{:.0}/{:.0} B", dist_sparse_h, dist_dense_h),
        ]);
        let _ = write!(
            entries,
            "{}    {{\n      \"scale\": {scale},\n      \"vertices\": {n},\n      \
             \"edges\": {edges},\n      \"source\": {source},\n      \"rounds\": {rounds},\n      \
             \"push_steps\": {},\n      \"pull_steps\": {},\n      \
             \"sparse_secs\": {sparse_secs:.9e},\n      \"dense_secs\": {dense_secs:.9e},\n      \
             \"teps\": {teps:.6e},\n      \"dist_sparse_h_bytes\": {dist_sparse_h:.1},\n      \
             \"dist_dense_h_bytes\": {dist_dense_h:.1}\n    }}",
            if i == 0 { "" } else { ",\n" },
            stats.push_steps,
            stats.pull_steps,
        );
    }
    print!("{}", table.render());

    let json = format!(
        "{{\n  \"bench\": \"graph_report\",\n  \"generator\": \"RMAT a=0.57 b=0.19 c=0.19 \
         (Graph500)\",\n  \"edge_factor\": {edge_factor},\n  \"seed\": {seed},\n  \
         \"dist_nodes\": {nodes},\n  \"sweep\": [\n{entries}\n  ]\n}}\n",
    );
    std::fs::write(&out_path, &json).expect("writing the JSON report must succeed");
    println!("\nwrote {out_path} ({} bytes)", json.len());

    if let Some(path) = trace_path {
        let spans = obs::span_count();
        std::fs::write(&path, obs::chrome_trace()).expect("writing the trace must succeed");
        println!("wrote {spans} span(s) to {path} (open in Perfetto / chrome://tracing)");
    }
}
