//! **Figure 1** — strong scaling of ALP vs Ref on the ARM machine.
//!
//! Paper setup: threads 16..96 (two 48-core sockets), problem sized to
//! memory, fixed iterations; result: ALP outperforms Ref at every thread
//! count and saturates earlier; Ref dips near the full socket due to
//! NUMA-unaware allocation.
//!
//! ```text
//! cargo run --release -p hpcg-bench --bin fig1_strong_arm \
//!     [--size 32] [--iters 10] [--threads 16,20,...] [--measure-limit N]
//! ```

use hpcg_bench::cli::Args;
use hpcg_bench::scaling::SharedMemoryMachine;
use hpcg_bench::strong::{print_rows, run_strong_scaling};

fn main() {
    let args = Args::from_env();
    let size = args.get_usize("size", 32);
    let iters = args.get_usize("iters", 10);
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let measure_limit = args.get_usize("measure-limit", host);
    let threads = args.get_usize_list("threads", &[16, 20, 24, 28, 32, 36, 40, 44, 48, 96]);

    let machine = SharedMemoryMachine::arm();
    let model_side = args.get_usize("model-side", 256);
    let rows = run_strong_scaling(machine, &threads, size, model_side, iters, measure_limit);
    print_rows(&machine, &rows, host);

    // The paper's qualitative claims, checked on the produced series.
    let all_alp_wins = rows.iter().all(|r| r.modeled_alp <= r.modeled_ref);
    println!("\nshape checks:");
    println!("  ALP <= Ref at every thread count: {all_alp_wins}");
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        println!(
            "  scaling gain {}→{} threads: ALP {:.2}x, Ref {:.2}x",
            first.threads,
            last.threads,
            first.modeled_alp / last.modeled_alp,
            first.modeled_ref / last.modeled_ref
        );
    }
}
