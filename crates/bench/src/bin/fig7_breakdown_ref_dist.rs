//! **Figure 7** — kernel breakdown per MG level: distributed **Ref**,
//! 2..7 cluster nodes (modeled on the simulated BSP cluster).
//!
//! Paper result: Ref's restriction/refinement share is smaller than ALP's
//! (its transfers are local array accesses) but its RBGS share is slightly
//! higher (it synchronizes with neighbors after every color).
//!
//! ```text
//! cargo run --release -p hpcg-bench --bin fig7_breakdown_ref_dist \
//!     [--local 16] [--iters 3] [--nodes 2,3,4,5,6,7]
//! ```

use hpcg_bench::breakdown::{dist_breakdown, print_breakdown, Impl};
use hpcg_bench::cli::Args;

fn main() {
    let args = Args::from_env();
    let local = args.get_usize("local", 16);
    let iters = args.get_usize("iters", 3);
    let nodes = args.get_usize_list("nodes", &[2, 3, 4, 5, 6, 7]);

    let rows = dist_breakdown(Impl::Reference, &nodes, local, iters);
    print_breakdown("Fig 7: distributed Ref kernel breakdown (modeled)", &rows);

    if let Some(r) = rows.first() {
        let rr_total: f64 = r.per_level.iter().map(|&(rr, _)| rr).sum();
        let sm_total: f64 = r.per_level.iter().map(|&(_, sm)| sm).sum();
        println!(
            "\nshape check: restrict/refine {rr_total:.1}% (small), RBGS {sm_total:.1}% (dominant)"
        );
    }
}
