//! **Figure 2** — strong scaling of ALP vs Ref on the x86 machine.
//!
//! Paper setup: threads 10..22 on one socket, then "44 - 1S"
//! (hyperthreads, one socket) and "88 - 2S" (both sockets). Result: ALP
//! wins everywhere; at 44 threads on one socket the two come close — Ref
//! only saturates with hyperthreading, ALP already saturated.
//!
//! ```text
//! cargo run --release -p hpcg-bench --bin fig2_strong_x86 \
//!     [--size 32] [--iters 10] [--threads 10,14,18,22,44,88]
//! ```

use hpcg_bench::cli::Args;
use hpcg_bench::scaling::SharedMemoryMachine;
use hpcg_bench::strong::{print_rows, run_strong_scaling};

fn main() {
    let args = Args::from_env();
    let size = args.get_usize("size", 32);
    let iters = args.get_usize("iters", 10);
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let measure_limit = args.get_usize("measure-limit", host);
    // 44 = hyperthreads on one socket ("44 - 1S"); 88 = both sockets ("88 - 2S").
    let threads = args.get_usize_list("threads", &[10, 14, 18, 22, 44, 88]);

    let machine = SharedMemoryMachine::x86();
    let model_side = args.get_usize("model-side", 256);
    let rows = run_strong_scaling(machine, &threads, size, model_side, iters, measure_limit);
    print_rows(&machine, &rows, host);

    println!("\nshape checks:");
    println!(
        "  ALP <= Ref everywhere: {}",
        rows.iter().all(|r| r.modeled_alp <= r.modeled_ref)
    );
    // "44 - 1S": the gap narrows once Ref saturates with hyperthreads.
    let gap = |t: usize| {
        rows.iter()
            .find(|r| r.threads == t)
            .map(|r| r.modeled_ref / r.modeled_alp)
    };
    if let (Some(g22), Some(g44)) = (gap(22), gap(44)) {
        println!(
            "  Ref/ALP gap at 22 threads: {g22:.2}x, at 44 (1S, HT): {g44:.2}x (paper: closer)"
        );
    }
}
