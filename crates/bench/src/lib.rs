//! Shared machinery for the figure/table harnesses.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md`'s experiment index). This library holds what they
//! share: a tiny CLI-flag parser, fixed-width table printing, host
//! introspection (Table II), and the calibrated shared-memory scaling
//! model used by the strong-scaling figures.

#![warn(missing_docs)]

pub mod breakdown;
pub mod cli;
pub mod hostinfo;
pub mod rmat;
pub mod scaling;
pub mod strong;
pub mod table;

pub use cli::Args;
pub use scaling::{SharedMemoryMachine, StrongScalingModel};
