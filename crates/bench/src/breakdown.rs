//! Shared logic of the kernel-breakdown harnesses (Figs 4-7).
//!
//! The paper's Figs 4-7 plot, for each amount of compute resource
//! (threads / nodes) and each of the 4 multigrid levels, the percentage of
//! total execution time spent in restriction/refinement (dark bars) and in
//! the RBGS smoother (bright bars). These helpers produce that exact
//! matrix for the shared-memory implementations (measured) and the
//! distributed ones (modeled).

use crate::table::Table;
use bsp::machine::MachineParams;
use graphblas::{BackendKind, DynCtx};
use hpcg::distributed::{run_distributed, AlpDistHpcg, RefDistHpcg};
use hpcg::driver::{flops_per_iteration, run_with_rhs, RunConfig};
use hpcg::{GrbHpcg, Grid3, Problem, RefHpcg, RhsVariant};

/// One bar group: per-level `(restrict/refine %, smoother %)`.
#[derive(Clone, Debug)]
pub struct BreakdownRow {
    /// Threads (Figs 4-5) or nodes (Figs 6-7).
    pub resource: usize,
    /// Per level, finest first: `(restrict_refine_pct, smoother_pct)`.
    pub per_level: Vec<(f64, f64)>,
}

/// Which shared-memory implementation to break down.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Impl {
    /// The GraphBLAS implementation (Fig 4).
    Alp,
    /// The reference implementation (Fig 5).
    Reference,
}

/// Measured shared-memory breakdown at each thread count (Figs 4-5).
///
/// `backend` selects the execution backend of the ALP kernels at runtime
/// (the thread count only matters under [`BackendKind::Parallel`]).
pub fn shared_breakdown(
    which: Impl,
    backend: BackendKind,
    threads_list: &[usize],
    size: usize,
    iterations: usize,
) -> Vec<BreakdownRow> {
    let problem = Problem::build_with(Grid3::cube(size), 4, RhsVariant::Reference)
        .expect("grid size must be divisible by 8");
    let flops = flops_per_iteration(&problem);
    let config = RunConfig {
        iterations,
        preconditioned: true,
    };
    threads_list
        .iter()
        .map(|&t| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .expect("thread pool construction");
            let report = pool.install(|| match which {
                Impl::Alp => {
                    let b = problem.b.clone();
                    let mut k = GrbHpcg::with_ctx(problem.clone(), DynCtx::runtime(backend));
                    run_with_rhs(&mut k, &b, flops, config).0
                }
                Impl::Reference => {
                    let b = problem.b.as_slice().to_vec();
                    let mut k = RefHpcg::new(problem.clone());
                    run_with_rhs(&mut k, &b, flops, config).0
                }
            });
            let total = report.total_secs.max(1e-300);
            BreakdownRow {
                resource: t,
                per_level: report
                    .levels
                    .iter()
                    .map(|l| {
                        (
                            100.0 * l.restrict_refine_secs / total,
                            100.0 * l.smoother_secs / total,
                        )
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Modeled distributed breakdown at each node count (Figs 6-7).
///
/// Weak scaling like the paper's cluster experiment: the grid grows with
/// the node count (`local³` points per node).
pub fn dist_breakdown(
    which: Impl,
    nodes_list: &[usize],
    local: usize,
    iterations: usize,
) -> Vec<BreakdownRow> {
    nodes_list
        .iter()
        .map(|&nodes| {
            let (nx, ny, nz) = weak_grid(nodes, local);
            let problem = Problem::build_with(Grid3::new(nx, ny, nz), 4, RhsVariant::Reference)
                .expect("weak-scaling grid must be divisible by 8");
            let report = match which {
                Impl::Alp => {
                    let b = problem.b.clone();
                    let mut k = AlpDistHpcg::new(problem, nodes, MachineParams::arm_cluster());
                    run_distributed(&mut k, &b, iterations).0
                }
                Impl::Reference => {
                    let b = problem.b.as_slice().to_vec();
                    let mut k = RefDistHpcg::new(problem, nodes, MachineParams::arm_cluster());
                    run_distributed(&mut k, &b, iterations).0
                }
            };
            BreakdownRow {
                resource: nodes,
                per_level: (0..report.level_breakdown.len())
                    .map(|l| (report.restrict_percent(l), report.smoother_percent(l)))
                    .collect(),
            }
        })
        .collect()
}

/// The weak-scaling grid for `nodes` nodes with a `local³` box each,
/// matching the 3D process factorization so both distributions apply.
pub fn weak_grid(nodes: usize, local: usize) -> (usize, usize, usize) {
    let (px, py, pz) = bsp::factor3d(nodes, local * nodes, local * nodes, local * nodes);
    (local * px, local * py, local * pz)
}

/// Prints breakdown rows in the figure's layout (levels left→right =
/// finest→coarsest, two numbers per level).
pub fn print_breakdown(caption: &str, rows: &[BreakdownRow]) {
    println!("{caption}");
    println!("per level: restrict/refine% | smoother%  (level 0 = finest)");
    let levels = rows.first().map(|r| r.per_level.len()).unwrap_or(0);
    let mut header = vec!["resource".to_string()];
    for l in 0..levels {
        header.push(format!("L{l} rr%"));
        header.push(format!("L{l} sm%"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    for r in rows {
        let mut cells = vec![r.resource.to_string()];
        for &(rr, sm) in &r.per_level {
            cells.push(format!("{rr:.1}"));
            cells.push(format!("{sm:.1}"));
        }
        t.row(cells);
    }
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_grid_grows_with_nodes() {
        let (x1, y1, z1) = weak_grid(1, 16);
        let (x2, y2, z2) = weak_grid(2, 16);
        assert_eq!(x1 * y1 * z1, 4096);
        assert_eq!(x2 * y2 * z2, 8192);
    }

    #[test]
    fn dist_breakdown_smoother_dominates() {
        let rows = dist_breakdown(Impl::Reference, &[2], 16, 2);
        let smoother_total: f64 = rows[0].per_level.iter().map(|&(_, s)| s).sum();
        assert!(
            smoother_total > 40.0,
            "smoother share {smoother_total}% too low"
        );
    }
}
