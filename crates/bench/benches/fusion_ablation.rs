//! Ablation of kernel fusion (paper §VI / nonblocking-execution [32]):
//! fused `spmv+dot` and `axpy+norm` vs the unfused GraphBLAS pairs.
//! Fusion halves the streaming traffic of the paired kernels, the saving
//! the Tianhe-2 work the paper cites reports at machine scale.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graphblas::{ctx, Sequential, Vector};
use hpcg::fused::{axpy_norm_fused, spmv_dot_fused};
use hpcg::problem::build_stencil_matrix;
use hpcg::Grid3;
use std::hint::black_box;

const SIZE: usize = 24;

fn bench_spmv_dot(c: &mut Criterion) {
    let a = build_stencil_matrix(Grid3::cube(SIZE));
    let n = a.nrows();
    let x = Vector::from_dense((0..n).map(|i| (i % 17) as f64).collect());
    let mut y = Vector::zeros(n);

    let mut g = c.benchmark_group("spmv_then_dot");
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function("unfused", |b| {
        let exec = ctx::<Sequential>();
        b.iter(|| {
            exec.mxv(black_box(&a), black_box(&x)).into(&mut y).unwrap();
            exec.dot(&x, &y).compute().unwrap()
        })
    });
    g.bench_function("fused", |b| {
        b.iter(|| spmv_dot_fused(black_box(&a), black_box(&x), &mut y))
    });
    g.finish();
}

fn bench_axpy_norm(c: &mut Criterion) {
    let n = SIZE * SIZE * SIZE * 8;
    let r0 = Vector::from_dense((0..n).map(|i| (i % 13) as f64).collect());
    let q = Vector::from_dense((0..n).map(|i| (i % 7) as f64).collect());

    let mut g = c.benchmark_group("axpy_then_norm");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("unfused", |b| {
        let exec = ctx::<Sequential>();
        let mut r = r0.clone();
        b.iter(|| {
            exec.axpy(&mut r, -0.5, black_box(&q)).unwrap();
            exec.norm2_squared(&r).unwrap()
        })
    });
    g.bench_function("fused", |b| {
        let mut r = r0.clone();
        b.iter(|| axpy_norm_fused(&mut r, 0.5, black_box(&q)))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spmv_dot, bench_axpy_norm
);
criterion_main!(benches);
