//! Ablation of kernel fusion (paper §VI / nonblocking-execution [32]):
//! three-way comparison per kernel pair —
//!
//! * **unfused** — the eager GraphBLAS pair (two passes over the data);
//! * **hand_fused** — the hand-written single-pass oracle
//!   (`hpcg::fused::*_hand`), what HPCG vendors ship;
//! * **pipeline_fused** — the pair recorded into a `Ctx::pipeline()` op
//!   graph and merged by the generic fusion pass.
//!
//! Acceptance gate: pipeline-fused within 10 % of hand-fused (and faster
//! than unfused) for both `spmv+dot` and `axpy+norm`, with bit-identical
//! results (pinned by tests, not timed here). Fusion halves the streaming
//! traffic of the paired kernels, the saving the Tianhe-2 work the paper
//! cites reports at machine scale.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graphblas::{ctx, Sequential, Vector};
use hpcg::fused::{axpy_norm_fused, axpy_norm_hand, spmv_dot_fused, spmv_dot_hand};
use hpcg::problem::build_stencil_matrix;
use hpcg::Grid3;
use std::hint::black_box;

const SIZE: usize = 24;

fn bench_spmv_dot(c: &mut Criterion) {
    let a = build_stencil_matrix(Grid3::cube(SIZE));
    let n = a.nrows();
    let x = Vector::from_dense((0..n).map(|i| (i % 17) as f64).collect());
    let mut y = Vector::zeros(n);

    let mut g = c.benchmark_group("spmv_then_dot");
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function("unfused", |b| {
        let exec = ctx::<Sequential>();
        b.iter(|| {
            exec.mxv(black_box(&a), black_box(&x)).into(&mut y).unwrap();
            exec.dot(&x, &y).compute().unwrap()
        })
    });
    g.bench_function("hand_fused", |b| {
        b.iter(|| spmv_dot_hand(black_box(&a), black_box(&x), &mut y))
    });
    g.bench_function("pipeline_fused", |b| {
        let exec = ctx::<Sequential>();
        b.iter(|| spmv_dot_fused(exec, black_box(&a), black_box(&x), &mut y))
    });
    g.finish();
}

fn bench_axpy_norm(c: &mut Criterion) {
    let n = SIZE * SIZE * SIZE * 8;
    let r0 = Vector::from_dense((0..n).map(|i| (i % 13) as f64).collect());
    let q = Vector::from_dense((0..n).map(|i| (i % 7) as f64).collect());

    let mut g = c.benchmark_group("axpy_then_norm");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("unfused", |b| {
        let exec = ctx::<Sequential>();
        let mut r = r0.clone();
        b.iter(|| {
            exec.axpy(&mut r, -0.5, black_box(&q)).unwrap();
            exec.norm2_squared(&r).unwrap()
        })
    });
    g.bench_function("hand_fused", |b| {
        let mut r = r0.clone();
        b.iter(|| axpy_norm_hand(&mut r, 0.5, black_box(&q)))
    });
    g.bench_function("pipeline_fused", |b| {
        let exec = ctx::<Sequential>();
        let mut r = r0.clone();
        b.iter(|| axpy_norm_fused(exec, &mut r, 0.5, black_box(&q)))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    // A high sample count keeps the statistics stable enough to resolve
    // the ≤10 % hand-vs-pipeline acceptance gate on shared machines; when
    // runs still jitter, compare the *minimum* (first bracketed value) —
    // it is the noise-robust statistic for arms that run sequentially.
    config = Criterion::default().sample_size(100);
    targets = bench_spmv_dot, bench_axpy_norm
);
criterion_main!(benches);
