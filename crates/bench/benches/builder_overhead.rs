//! Zero-cost check of the execution-context API: the fluent builders must
//! lower onto the kernels with no measurable overhead versus calling the
//! monomorphized kernel through a static context, the runtime-dispatched
//! `DynCtx` must add only its one predictable branch per operation, and a
//! deferred `Ctx::pipeline()` recording of the same single op must cost
//! only its small constant graph setup.
//!
//! The `plan` arms run the same op through a plan compiled **once**
//! outside the measurement loop — the replay path a CG iteration or
//! repeated serve job takes. Replay skips per-call recording and fusion,
//! so it must never be slower than the re-record pipeline arm.
//!
//! Acceptance gate for the API redesign (PR 1) and the pipeline layer:
//! builder-API `mxv`/`dot` within noise (≤2 %) of the static path, and the
//! single-op pipeline path within a few percent on kernels this size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphblas::{ctx, BackendKind, DynCtx, Sequential, Vector};
use hpcg::problem::build_stencil_matrix;
use hpcg::Grid3;
use std::hint::black_box;

const SIZE: usize = 24; // 24³ = 13 824 rows, ~370 k nonzeroes

fn bench_mxv_paths(c: &mut Criterion) {
    let a = build_stencil_matrix(Grid3::cube(SIZE));
    let n = a.nrows();
    let x = Vector::from_dense((0..n).map(|i| (i % 17) as f64).collect());
    let mut y = Vector::zeros(n);

    let mut g = c.benchmark_group("mxv_path");
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function(BenchmarkId::new("builder", "sequential"), |b| {
        let exec = ctx::<Sequential>();
        b.iter(|| {
            exec.mxv(black_box(&a), black_box(&x)).into(&mut y).unwrap();
        })
    });
    g.bench_function(BenchmarkId::new("builder", "dyn_runtime"), |b| {
        let exec = DynCtx::runtime(BackendKind::Sequential);
        b.iter(|| {
            exec.mxv(black_box(&a), black_box(&x)).into(&mut y).unwrap();
        })
    });
    g.bench_function(BenchmarkId::new("pipeline", "sequential"), |b| {
        let exec = ctx::<Sequential>();
        b.iter(|| {
            let mut pl = exec.pipeline();
            pl.mxv(black_box(&a), black_box(&x)).into(&mut y);
            pl.finish().unwrap();
        })
    });
    g.bench_function(BenchmarkId::new("plan", "sequential"), |b| {
        let exec = ctx::<Sequential>();
        // Compiled once; the loop only rebinds and replays.
        let plan = {
            let mut pb = exec.plan::<f64>();
            let am = pb.matrix(n, n);
            let xs = pb.input(n);
            let ys = pb.output(n);
            pb.mxv(am, xs).into(ys);
            pb.compile()
        };
        b.iter(|| {
            let mut bnd = plan.bindings();
            bnd.bind_matrix(plan.matrix_slot(0), black_box(&a))
                .bind_input(plan.input_slot(0), black_box(&x))
                .bind_output(plan.output_slot(0), &mut y);
            plan.run(&mut bnd).unwrap();
        })
    });
    g.finish();
}

fn bench_dot_paths(c: &mut Criterion) {
    let n = SIZE * SIZE * SIZE;
    let x = Vector::from_dense((0..n).map(|i| (i % 13) as f64).collect());
    let y = Vector::from_dense((0..n).map(|i| (i % 7) as f64).collect());

    let mut g = c.benchmark_group("dot_path");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function(BenchmarkId::new("builder", "sequential"), |b| {
        let exec = ctx::<Sequential>();
        b.iter(|| exec.dot(black_box(&x), black_box(&y)).compute().unwrap())
    });
    g.bench_function(BenchmarkId::new("builder", "dyn_runtime"), |b| {
        let exec = DynCtx::runtime(BackendKind::Sequential);
        b.iter(|| exec.dot(black_box(&x), black_box(&y)).compute().unwrap())
    });
    g.bench_function(BenchmarkId::new("pipeline", "sequential"), |b| {
        let exec = ctx::<Sequential>();
        b.iter(|| {
            let mut pl = exec.pipeline();
            let d = pl.dot(black_box(&x), black_box(&y)).result();
            pl.finish().unwrap()[d]
        })
    });
    g.bench_function(BenchmarkId::new("plan", "sequential"), |b| {
        let exec = ctx::<Sequential>();
        let plan = {
            let mut pb = exec.plan::<f64>();
            let xs = pb.input(n);
            let ys = pb.input(n);
            pb.dot(xs, ys).result();
            pb.compile()
        };
        b.iter(|| {
            let mut bnd = plan.bindings();
            bnd.bind_input(plan.input_slot(0), black_box(&x))
                .bind_input(plan.input_slot(1), black_box(&y));
            plan.run(&mut bnd).unwrap()[plan.scalar(0)]
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_mxv_paths, bench_dot_paths
);
criterion_main!(benches);
