//! Criterion benches of the composed solver: one MG V-cycle and one full
//! preconditioned CG iteration, for both implementations. These are the
//! units the paper's execution-time figures integrate over.

use criterion::{criterion_group, criterion_main, Criterion};
use graphblas::Sequential;
use hpcg::cg::{cg_solve, CgWorkspace};
use hpcg::mg::{mg_precondition, MgWorkspace};
use hpcg::{GrbHpcg, Grid3, Kernels, Problem, RefHpcg, RhsVariant};
use std::hint::black_box;

const SIZE: usize = 16;

fn bench_mg_cycle(c: &mut Criterion) {
    let problem = Problem::build_with(Grid3::cube(SIZE), 4, RhsVariant::Reference).unwrap();
    let mut g = c.benchmark_group("mg_vcycle");

    {
        let b = problem.b.clone();
        let mut k = GrbHpcg::<Sequential>::new(problem.clone());
        let mut ws = MgWorkspace::new(&k);
        let mut z = k.alloc(0);
        g.bench_function("alp", |bch| {
            bch.iter(|| mg_precondition(&mut k, &mut ws, black_box(&b), &mut z))
        });
    }
    {
        let b = problem.b.as_slice().to_vec();
        let mut k = RefHpcg::new(problem.clone());
        let mut ws = MgWorkspace::new(&k);
        let mut z = k.alloc(0);
        g.bench_function("ref", |bch| {
            bch.iter(|| mg_precondition(&mut k, &mut ws, black_box(&b), &mut z))
        });
    }
    g.finish();
}

fn bench_cg_iterations(c: &mut Criterion) {
    let problem = Problem::build_with(Grid3::cube(SIZE), 4, RhsVariant::Reference).unwrap();
    let mut g = c.benchmark_group("pcg_5_iterations");

    {
        let b = problem.b.clone();
        let mut k = GrbHpcg::<Sequential>::new(problem.clone());
        let mut cg_ws = CgWorkspace::new(&k);
        let mut mg_ws = MgWorkspace::new(&k);
        g.bench_function("alp", |bch| {
            bch.iter(|| {
                let mut x = k.alloc(0);
                cg_solve(
                    &mut k,
                    &mut cg_ws,
                    &mut mg_ws,
                    black_box(&b),
                    &mut x,
                    5,
                    0.0,
                    true,
                )
            })
        });
    }
    {
        let b = problem.b.as_slice().to_vec();
        let mut k = RefHpcg::new(problem);
        let mut cg_ws = CgWorkspace::new(&k);
        let mut mg_ws = MgWorkspace::new(&k);
        g.bench_function("ref", |bch| {
            bch.iter(|| {
                let mut x = k.alloc(0);
                cg_solve(
                    &mut k,
                    &mut cg_ws,
                    &mut mg_ws,
                    black_box(&b),
                    &mut x,
                    5,
                    0.0,
                    true,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mg_cycle, bench_cg_iterations
);
criterion_main!(benches);
