//! Criterion benches of CG's three hot kernels (paper §II-C): `spmv`,
//! `dot`, `waxpby` — GraphBLAS primitives vs the reference direct loops,
//! sequential vs rayon-parallel backends.
//!
//! These quantify the §IV claim that the zero-sized-type semiring design
//! monomorphizes down to the same arithmetic as hand-written loops: the
//! GraphBLAS and direct columns should be within noise of each other.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphblas::{ctx, Parallel, Sequential, Vector};
use hpcg::problem::build_stencil_matrix;
use hpcg::Grid3;
use std::hint::black_box;

const SIZE: usize = 24; // 24³ = 13 824 rows, ~370 k nonzeroes

fn bench_spmv(c: &mut Criterion) {
    let a = build_stencil_matrix(Grid3::cube(SIZE));
    let n = a.nrows();
    let x = Vector::from_dense((0..n).map(|i| (i % 17) as f64).collect());
    let mut y = Vector::zeros(n);

    let mut g = c.benchmark_group("spmv");
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function(BenchmarkId::new("graphblas", "sequential"), |b| {
        let exec = ctx::<Sequential>();
        b.iter(|| {
            exec.mxv(black_box(&a), black_box(&x)).into(&mut y).unwrap();
        })
    });
    g.bench_function(BenchmarkId::new("graphblas", "parallel"), |b| {
        let exec = ctx::<Parallel>();
        b.iter(|| {
            exec.mxv(black_box(&a), black_box(&x)).into(&mut y).unwrap();
        })
    });
    // The reference-style direct loop for comparison.
    let ys = vec![0.0f64; n];
    let mut ys = ys;
    g.bench_function(BenchmarkId::new("direct", "sequential"), |b| {
        b.iter(|| {
            let xs = x.as_slice();
            for (i, slot) in ys.iter_mut().enumerate().take(n) {
                let (cols, vals) = a.row(i);
                let mut acc = 0.0;
                for (&cc, &v) in cols.iter().zip(vals) {
                    acc += v * xs[cc as usize];
                }
                *slot = acc;
            }
            black_box(&ys);
        })
    });
    g.finish();
}

fn bench_dot(c: &mut Criterion) {
    let n = SIZE * SIZE * SIZE;
    let x = Vector::from_dense((0..n).map(|i| (i % 13) as f64).collect());
    let y = Vector::from_dense((0..n).map(|i| (i % 7) as f64).collect());
    let mut g = c.benchmark_group("dot");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("graphblas_sequential", |b| {
        let exec = ctx::<Sequential>();
        b.iter(|| exec.dot(black_box(&x), black_box(&y)).compute().unwrap())
    });
    g.bench_function("graphblas_parallel", |b| {
        let exec = ctx::<Parallel>();
        b.iter(|| exec.dot(black_box(&x), black_box(&y)).compute().unwrap())
    });
    g.bench_function("direct", |b| {
        b.iter(|| {
            let (xs, ys) = (x.as_slice(), y.as_slice());
            let mut acc = 0.0;
            for i in 0..n {
                acc += xs[i] * ys[i];
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_waxpby(c: &mut Criterion) {
    let n = SIZE * SIZE * SIZE;
    let x = Vector::from_dense((0..n).map(|i| (i % 13) as f64).collect());
    let y = Vector::from_dense((0..n).map(|i| (i % 7) as f64).collect());
    let mut w = Vector::zeros(n);
    let mut g = c.benchmark_group("waxpby");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("graphblas_sequential", |b| {
        let exec = ctx::<Sequential>();
        b.iter(|| {
            exec.ewise(black_box(&x), black_box(&y))
                .scaled(2.0, -1.0)
                .into(&mut w)
                .unwrap()
        })
    });
    g.bench_function("graphblas_parallel", |b| {
        let exec = ctx::<Parallel>();
        b.iter(|| {
            exec.ewise(black_box(&x), black_box(&y))
                .scaled(2.0, -1.0)
                .into(&mut w)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_masked_mxv(c: &mut Criterion) {
    // The RBGS inner kernel: masked structural mxv touches 1/8 of the rows.
    let a = build_stencil_matrix(Grid3::cube(SIZE));
    let n = a.nrows();
    let coloring = hpcg::coloring::Coloring::greedy(&a);
    let masks = coloring.masks(n);
    let x = Vector::from_dense((0..n).map(|i| (i % 11) as f64).collect());
    let mut y = Vector::zeros(n);
    let mut g = c.benchmark_group("masked_mxv");
    g.throughput(Throughput::Elements((a.nnz() / 8) as u64));
    g.bench_function("one_color_structural", |b| {
        let exec = ctx::<Sequential>();
        b.iter(|| {
            exec.mxv(&a, &x)
                .mask(black_box(&masks[0]))
                .structural()
                .into(&mut y)
                .unwrap();
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spmv, bench_dot, bench_waxpby, bench_masked_mxv
);
criterion_main!(benches);
