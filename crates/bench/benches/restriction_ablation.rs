//! Ablation of the paper's §VII-A proposal: restriction/refinement as a
//! **materialized CSR matrix** (the GraphBLAS-conformant form of §III-B)
//! vs a **matrix-free abstract linear operator** (straight injection from
//! its index map). The paper predicts the abstract form trades bandwidth
//! for computation; this bench measures the difference, and the storage
//! ratio is printed by the `quickstart` example.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graphblas::{CsrMatrix, InjectionOperator, LinearOperator, Sequential, Vector};
use hpcg::{Grid3, Problem, RhsVariant};
use std::hint::black_box;

const SIZE: usize = 32;

fn bench_restriction(c: &mut Criterion) {
    let problem = Problem::build_with(Grid3::cube(SIZE), 2, RhsVariant::Reference).unwrap();
    let level = &problem.levels[0];
    let csr: &CsrMatrix<f64> = level.restriction.as_ref().unwrap();
    let inj: &InjectionOperator = level.injection.as_ref().unwrap();
    let nf = level.n();
    let nc = problem.levels[1].n();
    let xf = Vector::from_dense((0..nf).map(|i| (i % 29) as f64).collect());
    let mut yc = Vector::zeros(nc);

    let mut g = c.benchmark_group("restriction");
    g.throughput(Throughput::Elements(nc as u64));
    g.bench_function("materialized_csr_mxv", |b| {
        b.iter(|| LinearOperator::<f64>::apply::<Sequential>(csr, &mut yc, black_box(&xf)).unwrap())
    });
    g.bench_function("matrix_free_injection", |b| {
        b.iter(|| LinearOperator::<f64>::apply::<Sequential>(inj, &mut yc, black_box(&xf)).unwrap())
    });
    g.finish();

    let xc = Vector::from_dense((0..nc).map(|i| (i % 31) as f64).collect());
    let mut yf = Vector::zeros(nf);
    let mut g = c.benchmark_group("refinement_transpose");
    g.throughput(Throughput::Elements(nf as u64));
    g.bench_function("materialized_csr_mxv_transpose", |b| {
        b.iter(|| {
            LinearOperator::<f64>::apply_transpose::<Sequential>(csr, &mut yf, black_box(&xc))
                .unwrap()
        })
    });
    g.bench_function("matrix_free_injection_transpose", |b| {
        b.iter(|| {
            LinearOperator::<f64>::apply_transpose::<Sequential>(inj, &mut yf, black_box(&xc))
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_restriction
);
criterion_main!(benches);
