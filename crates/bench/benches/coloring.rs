//! Criterion benches of setup-time machinery: greedy coloring (§III-A)
//! and the `mxm`-based row-permutation path (`PᵀAP`) the paper names as
//! GraphBLAS's only conforming way to regroup indices.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graphblas::{ctx, CsrMatrix, Sequential};
use hpcg::coloring::{octant_coloring, Coloring};
use hpcg::problem::build_stencil_matrix;
use hpcg::Grid3;
use std::hint::black_box;

const SIZE: usize = 20;

fn bench_coloring(c: &mut Criterion) {
    let grid = Grid3::cube(SIZE);
    let a = build_stencil_matrix(grid);
    let mut g = c.benchmark_group("coloring");
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function("greedy", |b| b.iter(|| Coloring::greedy(black_box(&a))));
    g.bench_function("octant_closed_form", |b| {
        b.iter(|| octant_coloring(black_box(grid)))
    });
    g.finish();
}

fn bench_permutation_mxm(c: &mut Criterion) {
    // P^T A P with P the color-sorting permutation: the §III-A mechanism
    // for regrouping same-colored rows into contiguous storage.
    let grid = Grid3::cube(12);
    let a = build_stencil_matrix(grid);
    let coloring = Coloring::greedy(&a);
    let order: Vec<usize> = {
        let mut idx: Vec<usize> = (0..a.nrows()).collect();
        idx.sort_by_key(|&i| (coloring.color[i], i));
        idx
    };
    // P[new, old] = 1 ⇒ (P A)_{new} = A_{old}.
    let p_triplets: Vec<(usize, usize, f64)> = order
        .iter()
        .enumerate()
        .map(|(new, &old)| (new, old, 1.0))
        .collect();
    let p = CsrMatrix::from_triplets(a.nrows(), a.nrows(), &p_triplets).unwrap();

    let mut g = c.benchmark_group("permutation");
    g.sample_size(10);
    g.bench_function("ptap_via_mxm", |b| {
        let exec = ctx::<Sequential>();
        b.iter(|| {
            let pa = exec.mxm(black_box(&p), black_box(&a)).compute().unwrap();
            let pat = exec.mxm(&pa, &p.transpose()).compute().unwrap();
            black_box(pat)
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_coloring, bench_permutation_mxm
);
criterion_main!(benches);
