//! Criterion benches of the smoothers (paper §II-E, §III-A): the
//! inherently sequential SGS baseline vs the parallelizable RBGS in both
//! its reference (direct-array) and GraphBLAS (masked-primitive) forms.
//!
//! The interesting comparisons:
//! * `sgs` vs `rbgs_*` sequential — RBGS does the same Θ(n) work in a
//!   different order, so sequential times should be comparable;
//! * `rbgs_ref` vs `rbgs_grb` — the paper's central programmability
//!   question: what does the opaque-container formulation cost?

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use graphblas::{ctx, Parallel, Sequential, Vector};
use hpcg::coloring::Coloring;
use hpcg::problem::{build_rhs, build_stencil_matrix, RhsVariant};
use hpcg::smoother::{rbgs_grb, rbgs_ref, sgs};
use hpcg::Grid3;
use std::hint::black_box;

const SIZE: usize = 24;

fn bench_smoothers(c: &mut Criterion) {
    let a = build_stencil_matrix(Grid3::cube(SIZE));
    let n = a.nrows();
    let diag_vec = a.extract_diagonal();
    let diag = diag_vec.as_slice().to_vec();
    let coloring = Coloring::greedy(&a);
    let classes = coloring.classes();
    let masks = coloring.masks(n);
    let b = build_rhs(&a, RhsVariant::Reference);
    let bs = b.as_slice().to_vec();

    let mut g = c.benchmark_group("smoother_symmetric_sweep");
    g.throughput(Throughput::Elements(a.nnz() as u64 * 2));

    g.bench_function("sgs_sequential_baseline", |bch| {
        let mut x = vec![0.0f64; n];
        bch.iter(|| {
            sgs::sgs_symmetric(black_box(&a), &diag, &bs, &mut x);
        })
    });

    g.bench_function("rbgs_ref", |bch| {
        let mut x = vec![0.0f64; n];
        bch.iter(|| {
            rbgs_ref::rbgs_symmetric(black_box(&a), &diag, &classes, &bs, &mut x);
        })
    });

    g.bench_function("rbgs_grb_sequential", |bch| {
        let mut x = Vector::zeros(n);
        let mut tmp = Vector::zeros(n);
        bch.iter(|| {
            rbgs_grb::rbgs_symmetric(
                ctx::<Sequential>(),
                black_box(&a),
                &diag_vec,
                &masks,
                &b,
                &mut x,
                &mut tmp,
            )
            .unwrap();
        })
    });

    g.bench_function("rbgs_grb_parallel", |bch| {
        let mut x = Vector::zeros(n);
        let mut tmp = Vector::zeros(n);
        bch.iter(|| {
            rbgs_grb::rbgs_symmetric(
                ctx::<Parallel>(),
                black_box(&a),
                &diag_vec,
                &masks,
                &b,
                &mut x,
                &mut tmp,
            )
            .unwrap();
        })
    });

    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_smoothers
);
criterion_main!(benches);
