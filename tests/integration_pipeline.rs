//! Cross-crate integration tests: the full pipeline from problem
//! generation through both HPCG implementations, shared-memory and
//! distributed, checked against each other and against known solutions.

use bsp::machine::MachineParams;
use graphblas::{Parallel, Sequential};
use hpcg::cg::{cg_solve, CgWorkspace};
use hpcg::distributed::{run_distributed, AlpDistHpcg, RefDistHpcg};
use hpcg::driver::{flops_per_iteration, run_with_rhs, RunConfig};
use hpcg::mg::MgWorkspace;
use hpcg::{validate, GrbHpcg, Grid3, Kernels, Problem, RefHpcg, RhsVariant};

fn problem(cube: usize, levels: usize) -> Problem {
    Problem::build_with(Grid3::cube(cube), levels, RhsVariant::Reference).unwrap()
}

#[test]
fn end_to_end_alp_solves_to_ones() {
    let p = problem(16, 4);
    let b = p.b.clone();
    let mut k = GrbHpcg::<Parallel>::new(p);
    let mut cg_ws = CgWorkspace::new(&k);
    let mut mg_ws = MgWorkspace::new(&k);
    let mut x = k.alloc(0);
    let res = cg_solve(&mut k, &mut cg_ws, &mut mg_ws, &b, &mut x, 100, 1e-10, true);
    assert!(res.relative_residual <= 1e-10);
    for &v in x.as_slice() {
        assert!((v - 1.0).abs() < 1e-7);
    }
}

#[test]
fn end_to_end_ref_solves_to_ones() {
    let p = problem(16, 4);
    let b = p.b.as_slice().to_vec();
    let mut k = RefHpcg::new(p);
    let mut cg_ws = CgWorkspace::new(&k);
    let mut mg_ws = MgWorkspace::new(&k);
    let mut x = k.alloc(0);
    let res = cg_solve(&mut k, &mut cg_ws, &mut mg_ws, &b, &mut x, 100, 1e-10, true);
    assert!(res.relative_residual <= 1e-10);
    for &v in &x {
        assert!((v - 1.0).abs() < 1e-7);
    }
}

#[test]
fn alp_and_ref_residual_histories_agree() {
    let p = problem(16, 3);
    let flops = flops_per_iteration(&p);
    let cfg = RunConfig {
        iterations: 15,
        preconditioned: true,
    };

    let b_grb = p.b.clone();
    let mut alp = GrbHpcg::<Sequential>::new(p.clone());
    let (_, cg_a) = run_with_rhs(&mut alp, &b_grb, flops, cfg);

    let b_vec = p.b.as_slice().to_vec();
    let mut reference = RefHpcg::new(p);
    let (_, cg_r) = run_with_rhs(&mut reference, &b_vec, flops, cfg);

    assert_eq!(cg_a.residual_history.len(), cg_r.residual_history.len());
    for (a, r) in cg_a.residual_history.iter().zip(&cg_r.residual_history) {
        assert!(((a - r) / r.abs().max(1e-300)).abs() < 1e-9, "{a} vs {r}");
    }
}

#[test]
fn parallel_and_sequential_backends_converge_alike() {
    let p = problem(16, 3);
    let flops = flops_per_iteration(&p);
    let cfg = RunConfig {
        iterations: 10,
        preconditioned: true,
    };
    let b = p.b.clone();

    let mut seq = GrbHpcg::<Sequential>::new(p.clone());
    let (_, cg_s) = run_with_rhs(&mut seq, &b, flops, cfg);
    let mut par = GrbHpcg::<Parallel>::new(p);
    let (_, cg_p) = run_with_rhs(&mut par, &b, flops, cfg);

    // Parallel dots re-associate, so compare with a tolerance.
    for (s, q) in cg_s.residual_history.iter().zip(&cg_p.residual_history) {
        assert!(((s - q) / s.abs().max(1e-300)).abs() < 1e-8);
    }
}

#[test]
fn distributed_runs_match_shared_memory_and_each_other() {
    let p = problem(16, 3);
    let iters = 6;

    let b_grb = p.b.clone();
    let mut shared = GrbHpcg::<Sequential>::new(p.clone());
    let mut cg_ws = CgWorkspace::new(&shared);
    let mut mg_ws = MgWorkspace::new(&shared);
    let mut x = shared.alloc(0);
    let cg_shared = cg_solve(
        &mut shared,
        &mut cg_ws,
        &mut mg_ws,
        &b_grb,
        &mut x,
        iters,
        0.0,
        true,
    );

    let mut alp = AlpDistHpcg::new(p.clone(), 4, MachineParams::arm_cluster());
    let (_, cg_alp) = run_distributed(&mut alp, &b_grb, iters);

    let b_vec = p.b.as_slice().to_vec();
    let mut rd = RefDistHpcg::new(p, 8, MachineParams::arm_cluster());
    let (_, cg_ref) = run_distributed(&mut rd, &b_vec, iters);

    for ((s, a), r) in cg_shared
        .residual_history
        .iter()
        .zip(&cg_alp.residual_history)
        .zip(&cg_ref.residual_history)
    {
        assert!(((s - a) / s).abs() < 1e-9);
        assert!(((s - r) / s).abs() < 1e-9);
    }
}

#[test]
fn weak_scaling_shape_ref_flat_alp_linear() {
    // The Fig 3 shape as an assertion: over a weak-scaling sweep the Ref
    // times stay within 10 % of each other while ALP grows monotonically.
    let machine = MachineParams::arm_cluster();
    let mut ref_times = Vec::new();
    let mut alp_times = Vec::new();
    for nodes in [2usize, 4, 8] {
        let (px, py, pz) = bsp::factor3d(nodes, 16 * nodes, 16 * nodes, 16 * nodes);
        let p = Problem::build_with(
            Grid3::new(16 * px, 16 * py, 16 * pz),
            2,
            RhsVariant::Reference,
        )
        .unwrap();
        let b_vec = p.b.as_slice().to_vec();
        let mut rd = RefDistHpcg::new(p.clone(), nodes, machine);
        let (rr, _) = run_distributed(&mut rd, &b_vec, 3);
        ref_times.push(rr.modeled_secs);
        let b_grb = p.b.clone();
        let mut alp = AlpDistHpcg::new(p, nodes, machine);
        let (ra, _) = run_distributed(&mut alp, &b_grb, 3);
        alp_times.push(ra.modeled_secs);
    }
    let ref_max = ref_times.iter().cloned().fold(0.0f64, f64::max);
    let ref_min = ref_times.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(ref_max / ref_min < 1.10, "Ref flat: {ref_times:?}");
    assert!(
        alp_times.windows(2).all(|w| w[1] > w[0]),
        "ALP monotone growth: {alp_times:?}"
    );
    assert!(
        alp_times.last().unwrap() > &(ref_times.last().unwrap() * 1.5),
        "ALP clearly slower at 8 nodes"
    );
}

#[test]
fn validation_passes_for_both_impls_on_larger_grid() {
    let p = problem(24, 3);
    let b_grb = p.b.clone();
    let mut alp = GrbHpcg::<Parallel>::new(p.clone());
    assert!(validate(&mut alp, &b_grb, 300).passed);
    let b_vec = p.b.as_slice().to_vec();
    let mut reference = RefHpcg::new(p);
    assert!(validate(&mut reference, &b_vec, 300).passed);
}

#[test]
fn gflops_reporting_is_positive_and_consistent() {
    let p = problem(8, 2);
    let flops = flops_per_iteration(&p);
    let b = p.b.clone();
    let mut alp = GrbHpcg::<Sequential>::new(p);
    let (report, _) = run_with_rhs(
        &mut alp,
        &b,
        flops,
        RunConfig {
            iterations: 5,
            preconditioned: true,
        },
    );
    assert!(report.gflops > 0.0);
    assert!(report.total_secs > 0.0);
    assert_eq!(report.levels.len(), 2);
    // Breakdown times are bounded by the total.
    let sum: f64 = report
        .levels
        .iter()
        .map(|l| l.smoother_secs + l.restrict_refine_secs + l.spmv_secs)
        .sum::<f64>()
        + report.dot_secs
        + report.waxpby_secs;
    assert!(
        sum <= report.total_secs * 1.05,
        "kernel sum {sum} vs total {}",
        report.total_secs
    );
}
