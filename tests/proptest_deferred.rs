//! Property tests of the deferred-execution contract on the **full CG op
//! sequence**: every vector and scalar a pipelined CG iteration produces —
//! the fused `spmv`+`⟨p, Ap⟩`, the update loop, the fused residual
//! `axpy`+`‖r‖²`, the masked smoother step (structural / inverted masks),
//! and the transposed accumulating refinement — must be **bit-identical**
//! to the eager builder path, on both backends — and the same body
//! **compiled once** into slot-based plans must stay bit-identical under
//! replay with rebound vectors and mutated scalar parameters.
//!
//! Entries are small integers in `f64`, so any divergence is a real
//! scheduling/fusion bug, never floating-point noise; on top of that the
//! fused reductions are required to match the eager fold bit for bit even
//! for non-associative data, which the end-to-end solver test below checks
//! with genuinely irrational values.

use graphblas::{ctx, CsrMatrix, Ctx, Distributed, Exec, Parallel, Plus, Sequential, Vector};
use hpcg::cg::{cg_solve, CgWorkspace};
use hpcg::mg::MgWorkspace;
use hpcg::{GrbHpcg, Grid3, Kernels, Problem, RhsVariant};
use proptest::prelude::*;

/// A random square sparse matrix with integer-valued entries.
fn arb_square(max_dim: usize) -> impl Strategy<Value = CsrMatrix<f64>> {
    (2..max_dim).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, -4i64..=4), 0..(n * n).min(64)).prop_map(
            move |trips| {
                let t: Vec<(usize, usize, f64)> = trips
                    .into_iter()
                    .map(|(r, c, v)| (r, c, v as f64))
                    .collect();
                CsrMatrix::from_triplets(n, n, &t).unwrap()
            },
        )
    })
}

fn mask_for(len: usize, bits: &[bool]) -> Option<Vector<bool>> {
    let idx: Vec<u32> = (0..len)
        .filter(|&i| bits.get(i).copied().unwrap_or(false))
        .map(|i| i as u32)
        .collect();
    if idx.is_empty() {
        None
    } else {
        Some(Vector::<bool>::sparse_filled(len, idx, true).unwrap())
    }
}

fn vec_mod(n: usize, m: usize, off: i64) -> Vector<f64> {
    Vector::from_dense((0..n).map(|i| (i as i64 % m as i64 + off) as f64).collect())
}

/// One CG-iteration-shaped op sequence with decorated smoother/refinement
/// steps, executed eagerly and through pipelines, compared bitwise. Takes
/// the execution context by value so the same check drives the static
/// backends and a `Distributed` cluster handle.
#[allow(clippy::too_many_arguments)]
fn check_cg_sequence<E: Exec>(
    exec: Ctx<E>,
    a: &CsrMatrix<f64>,
    mask_bits: &[bool],
    structural: bool,
    inverted: bool,
) -> Result<(), TestCaseError> {
    let n = a.nrows();
    let p = vec_mod(n, 7, -3);
    let diag = Vector::from_dense((0..n).map(|i| (i % 4 + 1) as f64).collect::<Vec<_>>());
    let r0 = vec_mod(n, 5, -2);
    let mask = mask_for(n, mask_bits);

    // --- eager reference ---------------------------------------------------
    let mut ap_e = Vector::zeros(n);
    exec.mxv(a, &p).into(&mut ap_e).unwrap();
    let pap_e = exec.dot(&p, &ap_e).compute().unwrap();
    let alpha = if pap_e != 0.0 { 1.0 / pap_e } else { 0.5 };
    let mut x_e = Vector::zeros(n);
    exec.axpy(&mut x_e, alpha, &p).unwrap();
    let mut r_e = r0.clone();
    exec.axpy(&mut r_e, -alpha, &ap_e).unwrap();
    let norm_e = exec.norm2_squared(&r_e).unwrap();
    // Smoother-shaped masked step on x.
    let mut tmp_e = Vector::zeros(n);
    {
        let mut b = exec.mxv(a, &x_e);
        if let Some(m) = mask.as_ref() {
            b = b.mask(m);
        }
        if structural {
            b = b.structural();
        }
        if inverted {
            b = b.invert_mask();
        }
        b.into(&mut tmp_e).unwrap();
    }
    {
        let (rs, ts, ds) = (r_e.as_slice(), tmp_e.as_slice(), diag.as_slice());
        let mut b = exec.transform(&mut x_e);
        if let Some(m) = mask.as_ref() {
            b = b.mask(m);
        }
        if structural {
            b = b.structural();
        }
        if inverted {
            b = b.invert_mask();
        }
        b.apply(|i, xi| {
            let d = ds[i];
            *xi = (rs[i] - ts[i] + *xi * d) / d;
        })
        .unwrap();
    }
    // Refinement-shaped transposed accumulating mxv.
    let mut z_e = vec_mod(n, 3, 0);
    exec.mxv(a, &x_e)
        .transpose()
        .accum(Plus)
        .into(&mut z_e)
        .unwrap();

    // --- pipelined ---------------------------------------------------------
    // Pipeline 1: fused spmv + dot.
    let mut ap_p = Vector::zeros(n);
    let mut pl = exec.pipeline();
    let ap_h = pl.mxv(a, &p).into(&mut ap_p);
    let pap_h = pl.dot(&p, ap_h).result();
    let out = pl.finish().unwrap();
    let pap_p = out[pap_h];
    prop_assert_eq!(pap_e.to_bits(), pap_p.to_bits());
    let alpha_p = if pap_p != 0.0 { 1.0 / pap_p } else { 0.5 };

    // Pipeline 2: the update loop + fused axpy/norm.
    let mut x_p = Vector::zeros(n);
    let mut r_p = r0.clone();
    let mut pl = exec.pipeline();
    pl.axpy(&mut x_p, alpha_p, &p);
    let rh = pl.axpy(&mut r_p, -alpha_p, &ap_p);
    let norm_h = pl.norm2_squared(rh);
    let out = pl.finish().unwrap();
    prop_assert_eq!(norm_e.to_bits(), out[norm_h].to_bits());

    // Pipeline 3: the masked smoother step + transposed accum refinement.
    let mut tmp_p = Vector::zeros(n);
    let mut z_p = vec_mod(n, 3, 0);
    let mut pl = exec.pipeline();
    let xh = pl.bind(&mut x_p);
    let th = {
        let mut b = pl.mxv(a, xh);
        if let Some(m) = mask.as_ref() {
            b = b.mask(m);
        }
        if structural {
            b = b.structural();
        }
        if inverted {
            b = b.invert_mask();
        }
        b.into(&mut tmp_p)
    };
    {
        let (rs, ds) = (r_p.as_slice(), diag.as_slice());
        let mut b = pl.transform_at(xh);
        if let Some(m) = mask.as_ref() {
            b = b.mask(m);
        }
        if structural {
            b = b.structural();
        }
        if inverted {
            b = b.invert_mask();
        }
        b.zip(th).apply(move |i, xi, ti| {
            let d = ds[i];
            *xi = (rs[i] - ti + *xi * d) / d;
        });
    }
    let _ = pl.mxv(a, xh).transpose().accum(Plus).into(&mut z_p);
    pl.finish().unwrap();

    prop_assert_eq!(ap_e.as_slice(), ap_p.as_slice());
    prop_assert_eq!(x_e.as_slice(), x_p.as_slice());
    prop_assert_eq!(r_e.as_slice(), r_p.as_slice());
    prop_assert_eq!(tmp_e.as_slice(), tmp_p.as_slice());
    prop_assert_eq!(z_e.as_slice(), z_p.as_slice());
    Ok(())
}

/// The CG iteration body **compiled once** and replayed with rebound
/// vectors and mutated `±α` scalar parameters: every replay must be
/// bit-identical to a freshly recorded-and-finished pipeline and to the
/// eager path. This is the contract that lets the solver and the serve
/// worker hoist recording and fusion out of their iteration loops.
fn check_plan_replay<E: Exec>(
    exec: Ctx<E>,
    a: &CsrMatrix<f64>,
    alphas: &[f64],
) -> Result<(), TestCaseError> {
    let n = a.nrows();
    // Compile the two plans once; every round below only rebinds.
    let spmv_plan = {
        let mut pb = exec.plan::<f64>();
        let am = pb.matrix(n, n);
        let ps = pb.input(n);
        let aps = pb.output(n);
        let ah = pb.mxv(am, ps).into(aps);
        pb.dot(ps, ah).result();
        pb.compile()
    };
    let update_plan = {
        let mut pb = exec.plan::<f64>();
        let xs = pb.output(n);
        let rs = pb.output(n);
        let ps = pb.input(n);
        let aps = pb.input(n);
        let pa = pb.param(0.0);
        let pna = pb.param(0.0);
        pb.axpy(xs, pa, ps);
        pb.axpy(rs, pna, aps);
        pb.norm2_squared(rs);
        pb.compile()
    };

    for (k, &alpha) in alphas.iter().enumerate() {
        // Fresh operand buffers each round: the replay contract is about
        // rebinding, not about reusing one fixed set of vectors.
        let p = vec_mod(n, 7, -(k as i64) - 1);
        let r0 = vec_mod(n, 5, k as i64 - 2);

        let mut ap_pl = Vector::zeros(n);
        let pap_pl = {
            let mut bnd = spmv_plan.bindings();
            bnd.bind_matrix(spmv_plan.matrix_slot(0), a)
                .bind_input(spmv_plan.input_slot(0), &p)
                .bind_output(spmv_plan.output_slot(0), &mut ap_pl);
            spmv_plan.run(&mut bnd).unwrap()[spmv_plan.scalar(0)]
        };
        let mut x_pl = Vector::zeros(n);
        let mut r_pl = r0.clone();
        let norm_pl = {
            let mut bnd = update_plan.bindings();
            bnd.bind_output(update_plan.output_slot(0), &mut x_pl)
                .bind_output(update_plan.output_slot(1), &mut r_pl)
                .bind_input(update_plan.input_slot(0), &p)
                .bind_input(update_plan.input_slot(1), &ap_pl)
                .set(update_plan.param(0), alpha)
                .set(update_plan.param(1), -alpha);
            update_plan.run(&mut bnd).unwrap()[update_plan.scalar(0)]
        };

        // Eager reference.
        let mut ap_e = Vector::zeros(n);
        exec.mxv(a, &p).into(&mut ap_e).unwrap();
        let pap_e = exec.dot(&p, &ap_e).compute().unwrap();
        let mut x_e = Vector::zeros(n);
        exec.axpy(&mut x_e, alpha, &p).unwrap();
        let mut r_e = r0.clone();
        exec.axpy(&mut r_e, -alpha, &ap_e).unwrap();
        let norm_e = exec.norm2_squared(&r_e).unwrap();

        // Freshly recorded pipeline.
        let mut ap_pp = Vector::zeros(n);
        let mut pl = exec.pipeline();
        let ah = pl.mxv(a, &p).into(&mut ap_pp);
        let ph = pl.dot(&p, ah).result();
        let pap_pp = pl.finish().unwrap()[ph];
        let mut x_pp = Vector::zeros(n);
        let mut r_pp = r0.clone();
        let mut pl = exec.pipeline();
        pl.axpy(&mut x_pp, alpha, &p);
        let rh = pl.axpy(&mut r_pp, -alpha, &ap_pp);
        let nh = pl.norm2_squared(rh);
        let norm_pp = pl.finish().unwrap()[nh];

        prop_assert_eq!(pap_pl.to_bits(), pap_e.to_bits());
        prop_assert_eq!(pap_pl.to_bits(), pap_pp.to_bits());
        prop_assert_eq!(norm_pl.to_bits(), norm_e.to_bits());
        prop_assert_eq!(norm_pl.to_bits(), norm_pp.to_bits());
        prop_assert_eq!(ap_pl.as_slice(), ap_e.as_slice());
        prop_assert_eq!(ap_pl.as_slice(), ap_pp.as_slice());
        prop_assert_eq!(x_pl.as_slice(), x_e.as_slice());
        prop_assert_eq!(x_pl.as_slice(), x_pp.as_slice());
        prop_assert_eq!(r_pl.as_slice(), r_e.as_slice());
        prop_assert_eq!(r_pl.as_slice(), r_pp.as_slice());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn cg_op_sequence_pipeline_bit_identical_on_all_backends(
        a in arb_square(12),
        mask_bits in proptest::collection::vec(proptest::bool::ANY, 0..12),
        structural in proptest::bool::ANY,
        inverted in proptest::bool::ANY,
    ) {
        check_cg_sequence(ctx::<Sequential>(), &a, &mask_bits, structural, inverted)?;
        check_cg_sequence(ctx::<Parallel>(), &a, &mask_bits, structural, inverted)?;
        // The distributed backend computes on global state through the
        // sequential kernels while recording BSP costs: it is held to the
        // same bitwise contract, eager and pipelined.
        check_cg_sequence(Distributed::new(3).ctx(), &a, &mask_bits, structural, inverted)?;
    }

    #[test]
    fn compiled_plan_replay_bit_identical_on_all_backends(
        a in arb_square(12),
        raw_alphas in proptest::collection::vec(-6i64..=6, 2..5),
    ) {
        let alphas: Vec<f64> = raw_alphas.iter().map(|&v| v as f64 / 3.0).collect();
        check_plan_replay(ctx::<Sequential>(), &a, &alphas)?;
        check_plan_replay(ctx::<Parallel>(), &a, &alphas)?;
        check_plan_replay(Distributed::new(3).ctx(), &a, &alphas)?;
    }
}

/// End-to-end contract on genuinely non-associative data: a full
/// preconditioned solve with pipelines on vs off is bit-identical, on both
/// backends (the residual involves irrational intermediate values, so this
/// would catch any fused reduction whose association order drifts).
#[test]
fn full_solver_pipeline_on_off_bit_identical_all_backends() {
    fn run_on<E: Exec>(p: &Problem, exec: Ctx<E>, pipelined: bool) -> (Vec<u64>, Vec<u64>) {
        let b = p.b.clone();
        let mut k = GrbHpcg::with_ctx(p.clone(), exec);
        k.set_pipeline(pipelined);
        let mut cg_ws = CgWorkspace::new(&k);
        let mut mg_ws = MgWorkspace::new(&k);
        let mut x = k.alloc(0);
        let res = cg_solve(&mut k, &mut cg_ws, &mut mg_ws, &b, &mut x, 9, 0.0, true);
        (
            x.as_slice().iter().map(|v| v.to_bits()).collect(),
            res.residual_history.iter().map(|v| v.to_bits()).collect(),
        )
    }
    let p = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
    let seq = run_on(&p, ctx::<Sequential>(), true);
    assert_eq!(seq, run_on(&p, ctx::<Sequential>(), false));
    assert_eq!(
        run_on(&p, ctx::<Parallel>(), true),
        run_on(&p, ctx::<Parallel>(), false)
    );
    // The whole solver on the simulated cluster: bit-identical to the
    // sequential runs, fused or not.
    assert_eq!(run_on(&p, Distributed::new(4).ctx(), true), seq);
    assert_eq!(run_on(&p, Distributed::new(4).ctx(), false), seq);
}
