//! Property-based tests of the HPCG layers: problem generation invariants,
//! coloring validity, smoother equivalences and solver behaviour on
//! randomly shaped (small) grids.

use graphblas::{ctx, Sequential, Vector};
use hpcg::coloring::{octant_coloring, Coloring};
use hpcg::problem::{build_rhs, build_stencil_matrix, Problem, RhsVariant};
use hpcg::smoother::{rbgs_grb, rbgs_ref};
use hpcg::Grid3;
use proptest::prelude::*;

fn arb_grid() -> impl Strategy<Value = Grid3> {
    (2usize..6, 2usize..6, 2usize..6).prop_map(|(x, y, z)| Grid3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stencil_matrix_invariants(grid in arb_grid()) {
        let a = build_stencil_matrix(grid);
        prop_assert_eq!(a.nrows(), grid.len());
        prop_assert!(a.is_symmetric());
        for r in 0..a.nrows() {
            let nnz = a.row_nnz(r);
            prop_assert!((8..=27).contains(&nnz) || grid.len() < 8);
            // Diagonal dominance: 26 > nnz - 1 (≤ 26).
            prop_assert_eq!(a.get(r, r), Some(26.0));
        }
    }

    #[test]
    fn reference_rhs_solution_is_ones(grid in arb_grid()) {
        let a = build_stencil_matrix(grid);
        let b = build_rhs(&a, RhsVariant::Reference);
        for r in 0..a.nrows() {
            let (_, vals) = a.row(r);
            let row_sum: f64 = vals.iter().sum();
            prop_assert!((row_sum - b.as_slice()[r]).abs() < 1e-12);
        }
    }

    #[test]
    fn greedy_coloring_valid_and_at_most_eight(grid in arb_grid()) {
        let a = build_stencil_matrix(grid);
        let c = Coloring::greedy(&a);
        prop_assert!(c.verify(&a));
        prop_assert!(c.num_colors <= 8);
        // Classes partition the index set.
        let total: usize = c.classes().iter().map(Vec::len).sum();
        prop_assert_eq!(total, grid.len());
        // Octant coloring is also valid on every grid.
        let oct = octant_coloring(grid);
        prop_assert!(oct.verify(&a));
    }

    #[test]
    fn rbgs_ref_equals_rbgs_grb_bitwise(grid in arb_grid(), sweeps in 1usize..3) {
        let a = build_stencil_matrix(grid);
        let diag = a.extract_diagonal();
        let coloring = Coloring::greedy(&a);
        let classes = coloring.classes();
        let masks = coloring.masks(a.nrows());
        let b = build_rhs(&a, RhsVariant::Reference);

        let mut x_ref = vec![0.0f64; a.nrows()];
        let mut x_grb = Vector::zeros(a.nrows());
        let mut tmp = Vector::zeros(a.nrows());
        for _ in 0..sweeps {
            rbgs_ref::rbgs_symmetric(&a, diag.as_slice(), &classes, b.as_slice(), &mut x_ref);
            rbgs_grb::rbgs_symmetric(ctx::<Sequential>(), &a, &diag, &masks, &b, &mut x_grb, &mut tmp)
                .unwrap();
        }
        prop_assert_eq!(x_ref.as_slice(), x_grb.as_slice());
    }

    #[test]
    fn smoother_is_a_contraction_toward_the_solution(grid in arb_grid()) {
        // ‖x − 1‖ must shrink under symmetric RBGS for the reference rhs.
        let a = build_stencil_matrix(grid);
        let diag = a.extract_diagonal();
        let coloring = Coloring::greedy(&a);
        let classes = coloring.classes();
        let b = build_rhs(&a, RhsVariant::Reference);
        let mut x = vec![0.0f64; a.nrows()];
        let err = |x: &[f64]| -> f64 {
            x.iter().map(|&v| (v - 1.0) * (v - 1.0)).sum::<f64>().sqrt()
        };
        let e0 = err(&x);
        rbgs_ref::rbgs_symmetric(&a, diag.as_slice(), &classes, b.as_slice(), &mut x);
        let e1 = err(&x);
        prop_assert!(e1 < e0, "error grew: {} -> {}", e0, e1);
    }

    #[test]
    fn hierarchy_sizes_shrink_by_eight(exp in 0usize..2) {
        let side = 8 << exp; // 8 or 16
        let levels = 3;
        let p = Problem::build_with(Grid3::cube(side), levels, RhsVariant::Reference).unwrap();
        for w in p.levels.windows(2) {
            prop_assert_eq!(w[0].n(), 8 * w[1].n());
            // Restriction maps the coarse space from the fine one.
            let r = w[0].restriction.as_ref().unwrap();
            prop_assert_eq!(r.nrows(), w[1].n());
            prop_assert_eq!(r.ncols(), w[0].n());
        }
    }

    #[test]
    fn injection_roundtrip_preserves_coarse_values(grid in arb_grid()) {
        // restrict(refine(zc)) == zc: straight injection is a left inverse
        // of its transpose.
        if grid.nx % 2 != 0 || grid.ny % 2 != 0 || grid.nz % 2 != 0 {
            return Ok(());
        }
        let coarse = grid.coarsen();
        let map: Vec<u32> =
            (0..coarse.len()).map(|gc| grid.fine_index_of_coarse(coarse, gc) as u32).collect();
        let op = graphblas::InjectionOperator::new(grid.len(), map).unwrap();
        let zc = Vector::from_dense((0..coarse.len()).map(|i| (i % 9) as f64 - 4.0).collect());
        let mut fine = Vector::zeros(grid.len());
        graphblas::LinearOperator::<f64>::apply_transpose::<Sequential>(&op, &mut fine, &zc)
            .unwrap();
        let mut back = Vector::zeros(coarse.len());
        graphblas::LinearOperator::<f64>::apply::<Sequential>(&op, &mut back, &fine).unwrap();
        prop_assert_eq!(back.as_slice(), zc.as_slice());
    }
}
