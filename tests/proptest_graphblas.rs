//! Property-based tests of the GraphBLAS substrate's algebraic contracts
//! and of the deferred (pipeline) path's equivalence with the eager
//! builders.
//!
//! Values are drawn from small integer ranges mapped into `f64`, so every
//! arithmetic identity holds *exactly* (no floating-point tolerance games):
//! linearity of `mxv`, transpose involution, mask decomposition, semiring
//! annihilation, monoid laws — and bit-identity of the `ctx.pipeline()`
//! recording path against the eager builders across every
//! masked/structural/inverted/transposed/accumulated combination, on both
//! backends.

use graphblas::{
    ctx, Backend, CsrMatrix, Max, Min, MinPlus, Parallel, Plus, Sequential, Times, Vector,
};
use proptest::prelude::*;

/// A random sparse matrix with integer-valued entries.
fn arb_matrix(max_dim: usize) -> impl Strategy<Value = CsrMatrix<f64>> {
    (1..max_dim, 1..max_dim).prop_flat_map(|(nrows, ncols)| {
        proptest::collection::vec((0..nrows, 0..ncols, -4i64..=4), 0..(nrows * ncols).min(64))
            .prop_map(move |trips| {
                let t: Vec<(usize, usize, f64)> = trips
                    .into_iter()
                    .map(|(r, c, v)| (r, c, v as f64))
                    .collect();
                CsrMatrix::from_triplets(nrows, ncols, &t).unwrap()
            })
    })
}

fn arb_vector(len: usize) -> impl Strategy<Value = Vector<f64>> {
    proptest::collection::vec(-4i64..=4, len)
        .prop_map(|v| Vector::from_dense(v.into_iter().map(|x| x as f64).collect()))
}

fn run_mxv(a: &CsrMatrix<f64>, x: &Vector<f64>) -> Vector<f64> {
    let mut y = Vector::zeros(a.nrows());
    ctx::<Sequential>().mxv(a, x).into(&mut y).unwrap();
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mxv_is_linear(a in arb_matrix(12)) {
        let n = a.ncols();
        let exec = ctx::<Sequential>();
        let strategy = (arb_vector(n), arb_vector(n), -3i64..=3, -3i64..=3);
        proptest!(|((x, y, alpha, beta) in strategy)| {
            let (alpha, beta) = (alpha as f64, beta as f64);
            // A(αx + βy)
            let mut combo = Vector::zeros(n);
            exec.ewise(&x, &y).scaled(alpha, beta).into(&mut combo).unwrap();
            let lhs = run_mxv(&a, &combo);
            // αAx + βAy
            let ax = run_mxv(&a, &x);
            let ay = run_mxv(&a, &y);
            let mut rhs = Vector::zeros(a.nrows());
            exec.ewise(&ax, &ay).scaled(alpha, beta).into(&mut rhs).unwrap();
            prop_assert_eq!(lhs.as_slice(), rhs.as_slice());
        });
    }

    #[test]
    fn transpose_is_involution(a in arb_matrix(14)) {
        let tt = a.transpose().transpose();
        prop_assert_eq!(a.nrows(), tt.nrows());
        prop_assert_eq!(a.ncols(), tt.ncols());
        prop_assert_eq!(a.nnz(), tt.nnz());
        for (r, c, v) in a.iter_entries() {
            prop_assert_eq!(tt.get(r, c), Some(v));
        }
    }

    #[test]
    fn transpose_descriptor_matches_materialized(a in arb_matrix(12), seed in 0u64..1000) {
        let x: Vector<f64> = Vector::from_dense(
            (0..a.nrows()).map(|i| ((i as u64 * 7 + seed) % 9) as f64 - 4.0).collect(),
        );
        let mut via_desc = Vector::zeros(a.ncols());
        ctx::<Sequential>().mxv(&a, &x).transpose().into(&mut via_desc).unwrap();
        let at = a.transpose();
        let via_mat = run_mxv(&at, &x);
        prop_assert_eq!(via_desc.as_slice(), via_mat.as_slice());
    }

    #[test]
    fn dot_transpose_adjoint(a in arb_matrix(10)) {
        // ⟨Ax, y⟩ == ⟨x, Aᵀy⟩ exactly for integer data.
        let exec = ctx::<Sequential>();
        let nr = a.nrows();
        let nc = a.ncols();
        let x = Vector::from_dense((0..nc).map(|i| ((i * 3) % 7) as f64 - 3.0).collect());
        let y = Vector::from_dense((0..nr).map(|i| ((i * 5) % 9) as f64 - 4.0).collect());
        let ax = run_mxv(&a, &x);
        let lhs = exec.dot(&ax, &y).compute().unwrap();
        let mut aty = Vector::zeros(nc);
        exec.mxv(&a, &y).transpose().into(&mut aty).unwrap();
        let rhs = exec.dot(&x, &aty).compute().unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn mask_and_complement_partition_the_output(
        a in arb_matrix(12),
        mask_bits in proptest::collection::vec(proptest::bool::ANY, 0..12),
    ) {
        let n = a.nrows();
        let bits: Vec<bool> = (0..n).map(|i| mask_bits.get(i).copied().unwrap_or(false)).collect();
        let idx: Vec<u32> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i as u32).collect();
        if idx.is_empty() || idx.len() == n {
            return Ok(());
        }
        let mask = Vector::<bool>::sparse_filled(n, idx, true).unwrap();
        let x = Vector::from_dense((0..a.ncols()).map(|i| (i % 5) as f64 - 2.0).collect());
        let exec = ctx::<Sequential>();

        let full = run_mxv(&a, &x);
        let mut masked = Vector::from_dense(vec![f64::NAN; n]);
        exec.mxv(&a, &x).mask(&mask).structural().into(&mut masked).unwrap();
        let mut complement = Vector::from_dense(vec![f64::NAN; n]);
        exec.mxv(&a, &x).mask(&mask).structural().invert_mask().into(&mut complement).unwrap();

        for (i, &bit) in bits.iter().enumerate() {
            if bit {
                prop_assert_eq!(masked.as_slice()[i], full.as_slice()[i]);
                prop_assert!(complement.as_slice()[i].is_nan(), "complement untouched at {}", i);
            } else {
                prop_assert!(masked.as_slice()[i].is_nan(), "masked untouched at {}", i);
                prop_assert_eq!(complement.as_slice()[i], full.as_slice()[i]);
            }
        }
    }

    #[test]
    fn mxv_accum_is_mxv_plus_previous(a in arb_matrix(12)) {
        let exec = ctx::<Sequential>();
        let x = Vector::from_dense((0..a.ncols()).map(|i| (i % 3) as f64).collect());
        let y0 = Vector::from_dense((0..a.nrows()).map(|i| (i % 4) as f64 - 1.0).collect());
        let mut accumed = y0.clone();
        exec.mxv(&a, &x).accum(Plus).into(&mut accumed).unwrap();
        let ax = run_mxv(&a, &x);
        let mut expected = Vector::zeros(a.nrows());
        exec.ewise(&y0, &ax).scaled(1.0, 1.0).into(&mut expected).unwrap();
        prop_assert_eq!(accumed.as_slice(), expected.as_slice());
    }

    #[test]
    fn masked_transpose_equals_masked_materialized_transpose(
        a in arb_matrix(12),
        mask_bits in proptest::collection::vec(proptest::bool::ANY, 0..12),
    ) {
        // The satellite fix: TRANSPOSE + mask (formerly Unsupported) must
        // agree with masking the materialized-transpose product.
        let n = a.ncols();
        let bits: Vec<bool> = (0..n).map(|i| mask_bits.get(i).copied().unwrap_or(false)).collect();
        let idx: Vec<u32> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i as u32).collect();
        if idx.is_empty() {
            return Ok(());
        }
        let mask = Vector::<bool>::sparse_filled(n, idx, true).unwrap();
        let x = Vector::from_dense((0..a.nrows()).map(|i| (i % 7) as f64 - 3.0).collect());
        let exec = ctx::<Sequential>();

        let mut via_desc = Vector::from_dense(vec![-9.0; n]);
        exec.mxv(&a, &x).transpose().mask(&mask).structural().into(&mut via_desc).unwrap();

        let at = a.transpose();
        let mut via_mat = Vector::from_dense(vec![-9.0; n]);
        exec.mxv(&at, &x).mask(&mask).structural().into(&mut via_mat).unwrap();
        prop_assert_eq!(via_desc.as_slice(), via_mat.as_slice());
    }

    #[test]
    fn reduce_agrees_with_iterator_folds(v in proptest::collection::vec(-50i64..=50, 0..64)) {
        let exec = ctx::<Sequential>();
        let x = Vector::from_dense(v.iter().map(|&i| i as f64).collect::<Vec<_>>());
        let sum = exec.reduce(&x).compute().unwrap();
        prop_assert_eq!(sum, v.iter().sum::<i64>() as f64);
        let mn = exec.reduce(&x).monoid(Min).compute().unwrap();
        let expected_min = v.iter().copied().min().map(|m| m as f64).unwrap_or(f64::INFINITY);
        prop_assert_eq!(mn, expected_min);
        let mx = exec.reduce(&x).monoid(Max).compute().unwrap();
        let expected_max = v.iter().copied().max().map(|m| m as f64).unwrap_or(f64::NEG_INFINITY);
        prop_assert_eq!(mx, expected_max);
    }

    #[test]
    fn min_plus_mxv_relaxes_distances(a in arb_matrix(10)) {
        // One tropical mxv step never *increases* any distance bound
        // reachable through an edge: y_i = min_j (A_ij + x_j) ≤ A_ik + x_k.
        let x = Vector::from_dense((0..a.ncols()).map(|i| (i % 6) as f64).collect());
        let mut y = Vector::zeros(a.nrows());
        ctx::<Sequential>().mxv(&a, &x).ring(MinPlus).into(&mut y).unwrap();
        for (r, c, v) in a.iter_entries() {
            prop_assert!(y.as_slice()[r] <= v + x.as_slice()[c] + 1e-12);
        }
    }

    #[test]
    fn ewise_times_matches_pointwise(len in 1usize..40) {
        let x = Vector::from_dense((0..len).map(|i| (i % 7) as f64 - 3.0).collect());
        let y = Vector::from_dense((0..len).map(|i| (i % 5) as f64 - 2.0).collect());
        let mut w = Vector::zeros(len);
        ctx::<Sequential>().ewise(&x, &y).op(graphblas::Times).into(&mut w).unwrap();
        for i in 0..len {
            prop_assert_eq!(w.as_slice()[i], x.as_slice()[i] * y.as_slice()[i]);
        }
    }
}

/// Bit-identity of the deferred (pipeline) path against the eager builder
/// path, the acceptance contract for the nonblocking-execution subsystem:
/// for every combination of mask presence × structural × inverted ×
/// transposed × accumulator, on both backends, recording the op into a
/// `ctx.pipeline()` and finishing must produce exactly the bytes the eager
/// builder did.
mod pipeline_equals_eager {
    use super::*;

    fn mask_for(len: usize, bits: &[bool]) -> Option<Vector<bool>> {
        let idx: Vec<u32> = (0..len)
            .filter(|&i| bits.get(i).copied().unwrap_or(false))
            .map(|i| i as u32)
            .collect();
        if idx.is_empty() {
            None
        } else {
            Some(Vector::<bool>::sparse_filled(len, idx, true).unwrap())
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_mxv_equivalence<B: Backend>(
        a: &CsrMatrix<f64>,
        x_rows: &Vector<f64>,
        x_cols: &Vector<f64>,
        mask_bits: &[bool],
        structural: bool,
        inverted: bool,
        transposed: bool,
        accumulate: bool,
    ) -> Result<(), TestCaseError> {
        let (x, out_len) = if transposed {
            (x_rows, a.ncols())
        } else {
            (x_cols, a.nrows())
        };
        let mask = mask_for(out_len, mask_bits);
        let y0: Vector<f64> =
            Vector::from_dense((0..out_len).map(|i| (i % 5) as f64 - 2.0).collect());

        let mut y_eager = y0.clone();
        let mut b = ctx::<B>().mxv(a, x);
        if let Some(m) = mask.as_ref() {
            b = b.mask(m);
        }
        if structural {
            b = b.structural();
        }
        if inverted {
            b = b.invert_mask();
        }
        if transposed {
            b = b.transpose();
        }
        let eager_result = if accumulate {
            b.accum(Plus).into(&mut y_eager)
        } else {
            b.into(&mut y_eager)
        };

        let mut y_pipe = y0.clone();
        let mut pl = ctx::<B>().pipeline();
        {
            let mut pb = pl.mxv(a, x);
            if let Some(m) = mask.as_ref() {
                pb = pb.mask(m);
            }
            if structural {
                pb = pb.structural();
            }
            if inverted {
                pb = pb.invert_mask();
            }
            if transposed {
                pb = pb.transpose();
            }
            if accumulate {
                pb = pb.accum(Plus);
            }
            pb.into(&mut y_pipe);
        }
        let pipe_result = pl.finish();

        prop_assert_eq!(eager_result.is_ok(), pipe_result.is_ok());
        if eager_result.is_ok() {
            prop_assert_eq!(y_eager.as_slice(), y_pipe.as_slice());
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn mxv_pipeline_bit_identical_to_eager(
            a in arb_matrix(10),
            mask_bits in proptest::collection::vec(proptest::bool::ANY, 0..10),
            flags in (proptest::bool::ANY, proptest::bool::ANY, proptest::bool::ANY, proptest::bool::ANY),
        ) {
            let (structural, inverted, transposed, accumulate) = flags;
            let x_rows = Vector::from_dense((0..a.nrows()).map(|i| (i % 7) as f64 - 3.0).collect());
            let x_cols = Vector::from_dense((0..a.ncols()).map(|i| (i % 7) as f64 - 3.0).collect());
            check_mxv_equivalence::<Sequential>(
                &a, &x_rows, &x_cols, &mask_bits, structural, inverted, transposed, accumulate,
            )?;
            check_mxv_equivalence::<Parallel>(
                &a, &x_rows, &x_cols, &mask_bits, structural, inverted, transposed, accumulate,
            )?;
        }

        #[test]
        fn ewise_pipeline_bit_identical_to_eager(
            len in 1usize..24,
            mask_bits in proptest::collection::vec(proptest::bool::ANY, 0..24),
            structural in proptest::bool::ANY,
            inverted in proptest::bool::ANY,
            accumulate in proptest::bool::ANY,
            scale in (-3i64..=3, -3i64..=3),
        ) {
            let x = Vector::from_dense((0..len).map(|i| (i % 7) as f64 - 3.0).collect());
            let y = Vector::from_dense((0..len).map(|i| (i % 5) as f64 - 2.0).collect());
            let mask = mask_for(len, &mask_bits);
            let (alpha, beta) = (scale.0 as f64, scale.1 as f64);
            let w0: Vector<f64> = Vector::from_dense(vec![9.0; len]);

            for par in [false, true] {
                macro_rules! run_both {
                    ($B:ty) => {{
                        let mut w_eager = w0.clone();
                        let mut b = ctx::<$B>().ewise(&x, &y).op(Times).scaled(alpha, beta);
                        if let Some(m) = mask.as_ref() { b = b.mask(m); }
                        if structural { b = b.structural(); }
                        if inverted { b = b.invert_mask(); }
                        if accumulate {
                            b.accum(Plus).into(&mut w_eager).unwrap();
                        } else {
                            b.into(&mut w_eager).unwrap();
                        }

                        let mut w_pipe = w0.clone();
                        let mut pl = ctx::<$B>().pipeline();
                        {
                            let mut pb = pl.ewise(&x, &y).op(Times).scaled(alpha, beta);
                            if let Some(m) = mask.as_ref() { pb = pb.mask(m); }
                            if structural { pb = pb.structural(); }
                            if inverted { pb = pb.invert_mask(); }
                            if accumulate { pb = pb.accum(Plus); }
                            pb.into(&mut w_pipe);
                        }
                        pl.finish().unwrap();
                        prop_assert_eq!(w_eager.as_slice(), w_pipe.as_slice());
                    }};
                }
                if par { run_both!(Parallel) } else { run_both!(Sequential) }
            }
        }

        #[test]
        fn reduce_and_dot_pipeline_bit_identical_to_eager(
            v in proptest::collection::vec(-9i64..=9, 1..48),
            mask_bits in proptest::collection::vec(proptest::bool::ANY, 0..48),
            structural in proptest::bool::ANY,
            inverted in proptest::bool::ANY,
        ) {
            let x = Vector::from_dense(v.iter().map(|&i| i as f64).collect::<Vec<_>>());
            let y = Vector::from_dense(v.iter().map(|&i| (i * 2 % 5) as f64).collect::<Vec<_>>());
            let mask = mask_for(x.len(), &mask_bits);

            macro_rules! reduce_eager {
                ($B:ty, $monoid:expr) => {{
                    let mut b = ctx::<$B>().reduce(&x).monoid($monoid);
                    if let Some(m) = mask.as_ref() { b = b.mask(m); }
                    if structural { b = b.structural(); }
                    if inverted { b = b.invert_mask(); }
                    b.compute().unwrap()
                }};
            }
            macro_rules! reduce_pipe {
                ($B:ty, $monoid:expr) => {{
                    let mut pl = ctx::<$B>().pipeline();
                    let h = {
                        let mut pb = pl.reduce(&x).monoid($monoid);
                        if let Some(m) = mask.as_ref() { pb = pb.mask(m); }
                        if structural { pb = pb.structural(); }
                        if inverted { pb = pb.invert_mask(); }
                        pb.result()
                    };
                    pl.finish().unwrap()[h]
                }};
            }

            prop_assert_eq!(reduce_eager!(Sequential, Plus), reduce_pipe!(Sequential, Plus));
            prop_assert_eq!(reduce_eager!(Parallel, Max), reduce_pipe!(Parallel, Max));

            let dot_eager = ctx::<Parallel>().dot(&x, &y).compute().unwrap();
            let mut pl = ctx::<Parallel>().pipeline();
            let dh = pl.dot(&x, &y).result();
            prop_assert_eq!(dot_eager, pl.finish().unwrap()[dh]);

            let min_eager = ctx::<Sequential>().dot(&x, &y).ring(MinPlus).compute().unwrap();
            let mut pl = ctx::<Sequential>().pipeline();
            let mh = pl.dot(&x, &y).ring(MinPlus).result();
            prop_assert_eq!(min_eager, pl.finish().unwrap()[mh]);
        }
    }
}
