//! Property-based tests of the GraphBLAS substrate's algebraic contracts.
//!
//! Values are drawn from small integer ranges mapped into `f64`, so every
//! arithmetic identity holds *exactly* (no floating-point tolerance games):
//! linearity of `mxv`, transpose involution, mask decomposition, semiring
//! annihilation, monoid laws.

use graphblas::{
    dot, ewise, mxv, mxv_accum, reduce, waxpby, CsrMatrix, Descriptor, Max, Min, MinPlus, Plus,
    PlusTimes, Sequential, Times, Vector,
};
use proptest::prelude::*;

/// A random sparse matrix with integer-valued entries.
fn arb_matrix(max_dim: usize) -> impl Strategy<Value = CsrMatrix<f64>> {
    (1..max_dim, 1..max_dim).prop_flat_map(|(nrows, ncols)| {
        proptest::collection::vec(
            (0..nrows, 0..ncols, -4i64..=4),
            0..(nrows * ncols).min(64),
        )
        .prop_map(move |trips| {
            let t: Vec<(usize, usize, f64)> =
                trips.into_iter().map(|(r, c, v)| (r, c, v as f64)).collect();
            CsrMatrix::from_triplets(nrows, ncols, &t).unwrap()
        })
    })
}

fn arb_vector(len: usize) -> impl Strategy<Value = Vector<f64>> {
    proptest::collection::vec(-4i64..=4, len)
        .prop_map(|v| Vector::from_dense(v.into_iter().map(|x| x as f64).collect()))
}

fn run_mxv(a: &CsrMatrix<f64>, x: &Vector<f64>) -> Vector<f64> {
    let mut y = Vector::zeros(a.nrows());
    mxv::<f64, PlusTimes, Sequential>(&mut y, None, Descriptor::DEFAULT, a, x, PlusTimes).unwrap();
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mxv_is_linear(a in arb_matrix(12)) {
        let n = a.ncols();
        let strategy = (arb_vector(n), arb_vector(n), -3i64..=3, -3i64..=3);
        proptest!(|((x, y, alpha, beta) in strategy)| {
            let (alpha, beta) = (alpha as f64, beta as f64);
            // A(αx + βy)
            let mut combo = Vector::zeros(n);
            waxpby::<f64, Sequential>(&mut combo, alpha, &x, beta, &y).unwrap();
            let lhs = run_mxv(&a, &combo);
            // αAx + βAy
            let ax = run_mxv(&a, &x);
            let ay = run_mxv(&a, &y);
            let mut rhs = Vector::zeros(a.nrows());
            waxpby::<f64, Sequential>(&mut rhs, alpha, &ax, beta, &ay).unwrap();
            prop_assert_eq!(lhs.as_slice(), rhs.as_slice());
        });
    }

    #[test]
    fn transpose_is_involution(a in arb_matrix(14)) {
        let tt = a.transpose().transpose();
        prop_assert_eq!(a.nrows(), tt.nrows());
        prop_assert_eq!(a.ncols(), tt.ncols());
        prop_assert_eq!(a.nnz(), tt.nnz());
        for (r, c, v) in a.iter_entries() {
            prop_assert_eq!(tt.get(r, c), Some(v));
        }
    }

    #[test]
    fn transpose_descriptor_matches_materialized(a in arb_matrix(12), seed in 0u64..1000) {
        let x: Vector<f64> = Vector::from_dense(
            (0..a.nrows()).map(|i| ((i as u64 * 7 + seed) % 9) as f64 - 4.0).collect(),
        );
        let mut via_desc = Vector::zeros(a.ncols());
        mxv::<f64, PlusTimes, Sequential>(
            &mut via_desc, None, Descriptor::TRANSPOSE, &a, &x, PlusTimes,
        ).unwrap();
        let at = a.transpose();
        let via_mat = run_mxv(&at, &x);
        prop_assert_eq!(via_desc.as_slice(), via_mat.as_slice());
    }

    #[test]
    fn dot_transpose_adjoint(a in arb_matrix(10)) {
        // ⟨Ax, y⟩ == ⟨x, Aᵀy⟩ exactly for integer data.
        let nr = a.nrows();
        let nc = a.ncols();
        let x = Vector::from_dense((0..nc).map(|i| ((i * 3) % 7) as f64 - 3.0).collect());
        let y = Vector::from_dense((0..nr).map(|i| ((i * 5) % 9) as f64 - 4.0).collect());
        let ax = run_mxv(&a, &x);
        let lhs = dot::<f64, PlusTimes, Sequential>(&ax, &y, PlusTimes).unwrap();
        let mut aty = Vector::zeros(nc);
        mxv::<f64, PlusTimes, Sequential>(&mut aty, None, Descriptor::TRANSPOSE, &a, &y, PlusTimes)
            .unwrap();
        let rhs = dot::<f64, PlusTimes, Sequential>(&x, &aty, PlusTimes).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn mask_and_complement_partition_the_output(
        a in arb_matrix(12),
        mask_bits in proptest::collection::vec(proptest::bool::ANY, 0..12),
    ) {
        let n = a.nrows();
        let bits: Vec<bool> = (0..n).map(|i| mask_bits.get(i).copied().unwrap_or(false)).collect();
        let idx: Vec<u32> =
            bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i as u32).collect();
        if idx.is_empty() || idx.len() == n {
            return Ok(());
        }
        let mask = Vector::<bool>::sparse_filled(n, idx, true).unwrap();
        let x = Vector::from_dense((0..a.ncols()).map(|i| (i % 5) as f64 - 2.0).collect());

        let full = run_mxv(&a, &x);
        let mut masked = Vector::from_dense(vec![f64::NAN; n]);
        mxv::<f64, PlusTimes, Sequential>(
            &mut masked, Some(&mask), Descriptor::STRUCTURAL, &a, &x, PlusTimes,
        ).unwrap();
        let mut complement = Vector::from_dense(vec![f64::NAN; n]);
        mxv::<f64, PlusTimes, Sequential>(
            &mut complement,
            Some(&mask),
            Descriptor::STRUCTURAL.with(Descriptor::INVERT_MASK),
            &a,
            &x,
            PlusTimes,
        ).unwrap();

        for i in 0..n {
            if bits[i] {
                prop_assert_eq!(masked.as_slice()[i], full.as_slice()[i]);
                prop_assert!(complement.as_slice()[i].is_nan(), "complement untouched at {}", i);
            } else {
                prop_assert!(masked.as_slice()[i].is_nan(), "masked untouched at {}", i);
                prop_assert_eq!(complement.as_slice()[i], full.as_slice()[i]);
            }
        }
    }

    #[test]
    fn mxv_accum_is_mxv_plus_previous(a in arb_matrix(12)) {
        let x = Vector::from_dense((0..a.ncols()).map(|i| (i % 3) as f64).collect());
        let y0 = Vector::from_dense((0..a.nrows()).map(|i| (i % 4) as f64 - 1.0).collect());
        let mut accumed = y0.clone();
        mxv_accum::<f64, PlusTimes, Sequential>(
            &mut accumed, None, Descriptor::DEFAULT, &a, &x, PlusTimes,
        ).unwrap();
        let ax = run_mxv(&a, &x);
        let mut expected = Vector::zeros(a.nrows());
        waxpby::<f64, Sequential>(&mut expected, 1.0, &y0, 1.0, &ax).unwrap();
        prop_assert_eq!(accumed.as_slice(), expected.as_slice());
    }

    #[test]
    fn reduce_agrees_with_iterator_folds(v in proptest::collection::vec(-50i64..=50, 0..64)) {
        let x = Vector::from_dense(v.iter().map(|&i| i as f64).collect::<Vec<_>>());
        let sum = reduce::<f64, Plus, Sequential>(&x, None, Descriptor::DEFAULT).unwrap();
        prop_assert_eq!(sum, v.iter().sum::<i64>() as f64);
        let mn = reduce::<f64, Min, Sequential>(&x, None, Descriptor::DEFAULT).unwrap();
        let expected_min = v.iter().copied().min().map(|m| m as f64).unwrap_or(f64::INFINITY);
        prop_assert_eq!(mn, expected_min);
        let mx = reduce::<f64, Max, Sequential>(&x, None, Descriptor::DEFAULT).unwrap();
        let expected_max = v.iter().copied().max().map(|m| m as f64).unwrap_or(f64::NEG_INFINITY);
        prop_assert_eq!(mx, expected_max);
    }

    #[test]
    fn min_plus_mxv_relaxes_distances(a in arb_matrix(10)) {
        // One tropical mxv step never *increases* any distance bound
        // reachable through an edge: y_i = min_j (A_ij + x_j) ≤ A_ik + x_k.
        let x = Vector::from_dense((0..a.ncols()).map(|i| (i % 6) as f64).collect());
        let mut y = Vector::zeros(a.nrows());
        mxv::<f64, MinPlus, Sequential>(&mut y, None, Descriptor::DEFAULT, &a, &x, MinPlus)
            .unwrap();
        for (r, c, v) in a.iter_entries() {
            prop_assert!(y.as_slice()[r] <= v + x.as_slice()[c] + 1e-12);
        }
    }

    #[test]
    fn ewise_times_matches_pointwise(len in 1usize..40) {
        let x = Vector::from_dense((0..len).map(|i| (i % 7) as f64 - 3.0).collect());
        let y = Vector::from_dense((0..len).map(|i| (i % 5) as f64 - 2.0).collect());
        let mut w = Vector::zeros(len);
        ewise::<f64, Times, Sequential>(&mut w, None, Descriptor::DEFAULT, &x, &y, Times).unwrap();
        for i in 0..len {
            prop_assert_eq!(w.as_slice()[i], x.as_slice()[i] * y.as_slice()[i]);
        }
    }
}
