//! Breadth integration tests: the GraphBLAS layer's general-purpose
//! features exercised through HPCG-shaped data — I/O roundtrips feeding
//! the solver, graph algorithms on the stencil graph, subdomain
//! extraction, and the 2D distributed layout inside a full CG run.

use bsp::machine::MachineParams;
use graphblas::io::{
    read_matrix_market, read_vector_market, write_matrix_market, write_vector_market,
};
use graphblas::{algorithms, ctx, extract_submatrix, CsrMatrix, Sequential, Vector};
use hpcg::distributed::{run_distributed, AlpDistHpcg};
use hpcg::problem::{build_rhs, build_stencil_matrix, Problem, RhsVariant};
use hpcg::Grid3;
use std::io::BufReader;

#[test]
fn matrix_market_roundtrip_preserves_solver_behaviour() {
    // Serialize the HPCG system, read it back, and check CG sees the same
    // operator: identical spmv results and symmetry.
    let a = build_stencil_matrix(Grid3::cube(6));
    let mut buf = Vec::new();
    write_matrix_market(&mut buf, &a).unwrap();
    let b = read_matrix_market(BufReader::new(&buf[..])).unwrap();
    assert_eq!(a, b);
    assert!(b.is_symmetric());

    let rhs = build_rhs(&a, RhsVariant::Reference);
    let mut vbuf = Vec::new();
    write_vector_market(&mut vbuf, &rhs).unwrap();
    let rhs_back = read_vector_market(BufReader::new(&vbuf[..])).unwrap();
    assert_eq!(rhs.as_slice(), rhs_back.as_slice());
}

#[test]
fn bfs_on_the_stencil_graph_is_chebyshev_distance() {
    let grid = Grid3::cube(5);
    let a = build_stencil_matrix(grid);
    let levels = algorithms::bfs_levels(ctx::<Sequential>(), &a, 0).unwrap();
    for (g, &level) in levels.iter().enumerate() {
        let (x, y, z) = grid.coords(g);
        assert_eq!(level, x.max(y).max(z) as i64, "at {:?}", (x, y, z));
    }
}

#[test]
fn sssp_on_uniform_stencil_weights_matches_bfs() {
    // All off-diagonal weights are −1 in HPCG's A; build a unit-weight
    // version of the adjacency for SSSP.
    let grid = Grid3::cube(4);
    let a = build_stencil_matrix(grid);
    let unit = CsrMatrix::from_row_fn(a.nrows(), a.ncols(), a.nnz(), |r, row| {
        let (cols, _) = a.row(r);
        for &c in cols {
            if c as usize != r {
                row.push((c, 1.0));
            }
        }
    })
    .unwrap();
    let dist = algorithms::sssp(ctx::<Sequential>(), &unit, 0).unwrap();
    let levels = algorithms::bfs_levels(ctx::<Sequential>(), &unit, 0).unwrap();
    for g in 0..grid.len() {
        assert_eq!(dist[g], levels[g] as f64);
    }
}

#[test]
fn stencil_interior_triangle_count_is_positive_and_symmetric() {
    // The 27-point stencil graph is full of triangles; the count must be
    // invariant under the (symmetric) transpose.
    let a = build_stencil_matrix(Grid3::cube(3));
    // Strip the diagonal (triangle counting expects a simple graph).
    let simple = CsrMatrix::from_row_fn(a.nrows(), a.ncols(), a.nnz(), |r, row| {
        let (cols, _) = a.row(r);
        for &c in cols {
            if c as usize != r {
                row.push((c, 1.0));
            }
        }
    })
    .unwrap();
    let t1 = algorithms::triangle_count(ctx::<Sequential>(), &simple).unwrap();
    let t2 = algorithms::triangle_count(ctx::<Sequential>(), &simple.transpose()).unwrap();
    assert!(t1 > 0);
    assert_eq!(t1, t2);
}

#[test]
fn extracted_subdomain_is_a_valid_smaller_stencil() {
    // Extract the principal submatrix of the first z-plane: it must be
    // symmetric and diagonally dominant like the full system.
    let grid = Grid3::cube(4);
    let a = build_stencil_matrix(grid);
    let plane: Vec<u32> = (0..16u32).collect(); // z = 0 plane of a 4³ grid
    let sub = extract_submatrix::<f64, Sequential>(&a, &plane, &plane).unwrap();
    assert_eq!(sub.nrows(), 16);
    assert!(sub.is_symmetric());
    for r in 0..sub.nrows() {
        assert_eq!(sub.get(r, r), Some(26.0));
        let (_, vals) = sub.row(r);
        let offdiag: f64 = vals.iter().filter(|&&v| v < 0.0).map(|v| -v).sum();
        assert!(offdiag < 26.0, "still diagonally dominant");
    }
}

#[test]
fn pagerank_on_stencil_graph_is_uniform_for_interior_symmetry() {
    // A symmetric regular-ish graph gives near-uniform ranks; corners get
    // slightly more mass than interiors under the column-stochastic walk
    // (fewer out-links raises the per-link weight). Just check mass and
    // positivity — the algorithm layer on HPCG-shaped data.
    let a = build_stencil_matrix(Grid3::cube(3));
    let n = a.nrows();
    let mut outdeg = vec![0usize; n];
    for (r, c, _) in a.iter_entries() {
        if r != c {
            outdeg[r] += 1;
        }
    }
    let m = CsrMatrix::from_row_fn(n, n, a.nnz(), |r, row| {
        let (cols, _) = a.row(r);
        // Column r of M gets 1/outdeg(r) at each neighbor: emit by rows of
        // M = transpose of the out-link structure; the stencil is
        // symmetric, so neighbors(r) are exactly the in-links of r.
        for &c in cols {
            if c as usize != r {
                row.push((c, 1.0 / outdeg[c as usize] as f64));
            }
        }
    })
    .unwrap();
    let (rank, iters) = algorithms::pagerank(ctx::<Sequential>(), &m, 0.85, 1e-10, 500).unwrap();
    assert!(iters < 500);
    let total: f64 = rank.as_slice().iter().sum();
    assert!((total - 1.0).abs() < 1e-8);
    assert!(rank.as_slice().iter().all(|&v| v > 0.0));
}

#[test]
fn block2d_distributed_cg_matches_1d_numerics() {
    let p = Problem::build_with(Grid3::cube(16), 3, RhsVariant::Reference).unwrap();
    let b = p.b.clone();
    let mut one_d = AlpDistHpcg::new(p.clone(), 4, MachineParams::arm_cluster());
    let (r1, cg1) = run_distributed(&mut one_d, &b, 5);
    let mut two_d = AlpDistHpcg::new_2d(p, 4, MachineParams::arm_cluster());
    let (r2, cg2) = run_distributed(&mut two_d, &b, 5);
    assert_eq!(
        cg1.residual_history, cg2.residual_history,
        "layout is cost-only"
    );
    assert!(r2.comm_bytes < r1.comm_bytes, "2D exchanges less");
    assert!(r2.modeled_secs <= r1.modeled_secs + 1e-12);
}

#[test]
fn heat_source_superposition() {
    // Linearity end-to-end: solving for b1 + b2 equals the sum of the two
    // solutions (CG to tight tolerance on an SPD system).
    use graphblas::Parallel;
    use hpcg::cg::{cg_solve, CgWorkspace};
    use hpcg::mg::MgWorkspace;
    use hpcg::{GrbHpcg, Kernels};
    let p = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
    let n = p.n();
    let mut k = GrbHpcg::<Parallel>::new(p);
    let mut cg_ws = CgWorkspace::new(&k);
    let mut mg_ws = MgWorkspace::new(&k);
    let solve = |b: &Vector<f64>,
                 k: &mut GrbHpcg<Parallel>,
                 cg_ws: &mut CgWorkspace<Vector<f64>>,
                 mg_ws: &mut MgWorkspace<Vector<f64>>| {
        let mut x = k.alloc(0);
        let r = cg_solve(k, cg_ws, mg_ws, b, &mut x, 200, 1e-12, true);
        assert!(r.relative_residual <= 1e-12);
        x
    };
    let b1 = Vector::from_dense((0..n).map(|i| ((i % 7) as f64) - 3.0).collect());
    let b2 = Vector::from_dense((0..n).map(|i| ((i % 5) as f64) * 0.5).collect());
    let mut b12 = Vector::zeros(n);
    graphblas::ctx::<Sequential>()
        .ewise(&b1, &b2)
        .scaled(1.0, 1.0)
        .into(&mut b12)
        .unwrap();
    let x1 = solve(&b1, &mut k, &mut cg_ws, &mut mg_ws);
    let x2 = solve(&b2, &mut k, &mut cg_ws, &mut mg_ws);
    let x12 = solve(&b12, &mut k, &mut cg_ws, &mut mg_ws);
    for i in 0..n {
        let sum = x1.as_slice()[i] + x2.as_slice()[i];
        assert!(
            (x12.as_slice()[i] - sum).abs() < 1e-7,
            "superposition violated at {i}: {} vs {sum}",
            x12.as_slice()[i]
        );
    }
}
