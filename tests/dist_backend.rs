//! The distributed backend's two contracts, end to end:
//!
//! 1. **Numerics**: `Ctx<Distributed>` is bit-identical to
//!    `ctx::<Sequential>()` across the builder surface (masks, structural
//!    / inverted descriptors, accumulators, scaling) and through whole
//!    graph algorithms — distribution is a *cost* property, never a
//!    numerical one (the per-op combinations and pipelines are
//!    property-tested in `proptest_deferred.rs`; this file adds the
//!    eager element-wise family and the algorithm layer).
//! 2. **Costs**: the recorded communication volumes reproduce what the
//!    hand-written `AlpDistHpcg` accounting used to record, and both
//!    match Table I's closed forms (`Θ(n(p−1)/p)` allgather per `mxv`,
//!    `Θ(p)` allreduce per reduction).

use bsp::collectives::{allgather_h_bytes, allreduce_h_bytes};
use bsp::cost::KernelClass;
use bsp::machine::MachineParams;
use graphblas::{
    algorithms, ctx, CsrMatrix, Ctx, DistConfig, Distributed, Exec, Max, Min, Plus, Sequential,
    ShardLayout, Times, Vector,
};
use hpcg::distributed::AlpDistHpcg;
use hpcg::problem::build_stencil_matrix;
use hpcg::{Grid3, Kernels, Problem, RhsVariant};
use proptest::prelude::*;

/// A directed graph with weights, as (dst, src, w) triplets of `n` nodes.
fn web_graph(n: usize) -> CsrMatrix<f64> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for v in 1..n {
        edges.push((v, v / 2)); // binary-tree links
        edges.push((v / 2, v));
        edges.push((v, (v + 1) % n)); // ring
    }
    let mut outdeg = vec![0usize; n];
    for &(s, _) in &edges {
        outdeg[s] += 1;
    }
    let trips: Vec<(usize, usize, f64)> = edges
        .iter()
        .map(|&(s, d)| (d, s, 1.0 / outdeg[s] as f64))
        .collect();
    CsrMatrix::from_triplets(n, n, &trips).unwrap()
}

#[test]
fn graph_algorithms_bit_identical_and_cost_accounted() {
    let a = build_stencil_matrix(Grid3::cube(4));
    let unit = CsrMatrix::from_row_fn(a.nrows(), a.ncols(), a.nnz(), |r, row| {
        let (cols, _) = a.row(r);
        for &c in cols {
            if c as usize != r {
                row.push((c, 1.0));
            }
        }
    })
    .unwrap();
    let m = web_graph(50);
    let cluster = Distributed::new(4);
    let dist = cluster.ctx();
    let seq = ctx::<Sequential>();

    assert_eq!(
        algorithms::bfs_levels(seq, &unit, 0).unwrap(),
        algorithms::bfs_levels(dist, &unit, 0).unwrap()
    );
    assert_eq!(
        algorithms::sssp(seq, &unit, 0).unwrap(),
        algorithms::sssp(dist, &unit, 0).unwrap()
    );
    let (rank_s, it_s) = algorithms::pagerank(seq, &m, 0.85, 1e-10, 500).unwrap();
    let (rank_d, it_d) = algorithms::pagerank(dist, &m, 0.85, 1e-10, 500).unwrap();
    assert_eq!(it_s, it_d);
    let bits = |v: &Vector<f64>| -> Vec<u64> { v.as_slice().iter().map(|x| x.to_bits()).collect() };
    assert_eq!(bits(&rank_s), bits(&rank_d));
    assert_eq!(
        algorithms::triangle_count(seq, &unit).unwrap(),
        algorithms::triangle_count(dist, &unit).unwrap()
    );

    // The per-kernel cost report covers everything the algorithms ran:
    // spmv (with its allgathers), reductions (with allreduces), updates.
    let summary = cluster.cost_summary();
    assert!(summary.total_secs > 0.0);
    assert!(summary.total_h_bytes > 0.0);
    let class = |k: KernelClass| summary.per_class.iter().find(|c| c.class == k);
    let spmv = class(KernelClass::SpMV).expect("mxv steps recorded");
    assert!(spmv.h_bytes > 0.0, "every mxv paid an allgather");
    let dots = class(KernelClass::Dot).expect("reduce/dot steps recorded");
    assert!(dots.steps > 0);
    assert!(
        class(KernelClass::Other).is_some(),
        "mxm recorded (tricount)"
    );
}

#[test]
fn allgather_volume_matches_paper_closed_form() {
    // Θ(n(p−1)/p) of Table I, exactly, for every even split — and per
    // reduction, the Θ(p) allreduce.
    for p in [2usize, 4, 8] {
        let n = 512usize;
        let a = build_stencil_matrix(Grid3::cube(8));
        let x = Vector::filled(n, 1.0);
        let mut y = Vector::zeros(n);
        let cluster = Distributed::new(p);
        cluster.ctx().mxv(&a, &x).into(&mut y).unwrap();
        cluster.ctx().dot(&x, &y).compute().unwrap();
        let t = cluster.tracker();
        assert_eq!(
            t.steps()[0].h_bytes,
            allgather_h_bytes(p, n / p, 8),
            "p={p}"
        );
        assert_eq!(t.steps()[1].h_bytes, allreduce_h_bytes(p, 8), "p={p}");
        // The closed form approaches n·8 from below as p grows.
        assert!(t.steps()[0].h_bytes < n as f64 * 8.0);
    }
}

#[test]
fn generic_backend_reproduces_alp_dist_recorded_volumes() {
    // The rebased AlpDistHpcg drives the generic backend with the same
    // BLOCK=64 block-cyclic layout the hand-rolled accounting used; a
    // from-scratch cluster with that layout must record identical
    // communication for the same kernel sequence.
    let prob = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference).unwrap();
    let n = prob.n();
    let p = 4usize;
    let mut alp = AlpDistHpcg::new(prob.clone(), p, MachineParams::arm_cluster());
    let x = Vector::filled(n, 1.0);
    let mut y = alp.alloc(0);
    alp.spmv(0, &mut y, &x);
    let d = alp.dot(0, &x, &y);

    let cluster =
        Distributed::with_config(DistConfig::new(p).layout(ShardLayout::BlockCyclic { block: 64 }));
    let mut y2 = Vector::zeros(n);
    cluster
        .ctx()
        .mxv(&prob.levels[0].a, &x)
        .into(&mut y2)
        .unwrap();
    let d2 = cluster.ctx().dot(&x, &y2).compute().unwrap();

    assert_eq!(d.to_bits(), d2.to_bits());
    let (ta, tg) = (alp.tracker().clone(), cluster.tracker());
    assert_eq!(ta.superstep_count(), tg.superstep_count());
    for (sa, sg) in ta.steps().iter().zip(tg.steps()) {
        assert_eq!(sa.h_bytes, sg.h_bytes, "same exchange, byte for byte");
    }
    // ... and those volumes are Table I's closed forms (n divides by p·64
    // evenly here, so the block-cyclic shares are exact n/p).
    assert_eq!(ta.steps()[0].h_bytes, allgather_h_bytes(p, n / p, 8));
    assert_eq!(ta.steps()[1].h_bytes, allreduce_h_bytes(p, 8));
}

#[test]
fn uneven_shards_make_the_straggler_pay() {
    // 10 elements on 3 block-sharded nodes: node 0 holds 4, so both its
    // send volume and its compute dominate the h-relation/work maxima.
    let n = 10usize;
    let a = CsrMatrix::<f64>::from_triplets(n, n, &(0..n).map(|i| (i, i, 1.0)).collect::<Vec<_>>())
        .unwrap();
    let x = Vector::filled(n, 1.0);
    let mut y = Vector::zeros(n);
    let cluster = Distributed::new(3);
    cluster.ctx().mxv(&a, &x).into(&mut y).unwrap();
    let step = cluster.tracker().steps()[0];
    assert_eq!(
        step.h_bytes,
        2.0 * 4.0 * 8.0,
        "the 4-element shard fans out"
    );
}

/// Eager element-wise / apply / reduce builder combinations, Distributed
/// vs Sequential, bit for bit (integer-valued data → any divergence is a
/// scheduling bug).
fn check_elementwise_family<E: Exec>(
    exec: Ctx<E>,
    xs: &[i64],
    ys: &[i64],
    mask_bits: &[bool],
    structural: bool,
    inverted: bool,
) -> (Vec<u64>, u64, u64) {
    let n = xs.len();
    let x = Vector::from_dense(xs.iter().map(|&v| v as f64).collect());
    let y = Vector::from_dense(ys.iter().map(|&v| v as f64).collect());
    let idx: Vec<u32> = (0..n)
        .filter(|&i| mask_bits.get(i).copied().unwrap_or(false))
        .map(|i| i as u32)
        .collect();
    let mask = if idx.is_empty() {
        None
    } else {
        Some(Vector::<bool>::sparse_filled(n, idx, true).unwrap())
    };
    let mut w = Vector::from_dense((0..n).map(|i| (i % 3) as f64).collect::<Vec<_>>());
    {
        let mut b = exec.ewise(&x, &y).op(Times).scaled(2.0, -3.0).accum(Plus);
        if let Some(m) = mask.as_ref() {
            b = b.mask(m);
        }
        if structural {
            b = b.structural();
        }
        if inverted {
            b = b.invert_mask();
        }
        b.into(&mut w).unwrap();
    }
    {
        let mut b = exec.apply(&x).op(graphblas::Abs).accum(Max);
        if let Some(m) = mask.as_ref() {
            b = b.mask(m);
        }
        if structural {
            b = b.structural();
        }
        b.into(&mut w).unwrap();
    }
    let reduced = {
        let mut b = exec.reduce(&w).monoid(Min);
        if let Some(m) = mask.as_ref() {
            b = b.mask(m);
        }
        if inverted {
            b = b.invert_mask();
        }
        b.compute().unwrap()
    };
    let dotted = exec.dot(&w, &y).compute().unwrap();
    (
        w.as_slice().iter().map(|v| v.to_bits()).collect(),
        reduced.to_bits(),
        dotted.to_bits(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn elementwise_family_bit_identical_distributed_vs_sequential(
        xs in proptest::collection::vec(-5i64..=5, 1..24),
        ys_seed in proptest::collection::vec(-5i64..=5, 1..24),
        mask_bits in proptest::collection::vec(proptest::bool::ANY, 0..24),
        structural in proptest::bool::ANY,
        inverted in proptest::bool::ANY,
    ) {
        let n = xs.len();
        let ys: Vec<i64> = (0..n).map(|i| ys_seed.get(i).copied().unwrap_or(1)).collect();
        let seq = check_elementwise_family(ctx::<Sequential>(), &xs, &ys, &mask_bits, structural, inverted);
        let dist = check_elementwise_family(Distributed::new(3).ctx(), &xs, &ys, &mask_bits, structural, inverted);
        prop_assert_eq!(seq, dist);
    }
}
