//! Property-based pinning of the sparse-frontier subsystem to the dense
//! baseline.
//!
//! The contract under test is **bit-identity**: the direction-optimizing
//! sparse-frontier traversals (`bfs_levels_on`, `sssp_on`, `pagerank_on`)
//! and the sparse `mxv` kernel must return exactly the bits the dense
//! vector path returns — on every backend, under masks and accumulators.
//! Values are small integers mapped into `f64` for the mxv laws (so
//! nothing relies on tolerance), but the traversal properties run on
//! awkward fractional weights precisely because the push kernel's scatter
//! order must still reproduce the dense kernel's bits.

use graphblas::algorithms::{
    bfs_levels_dense, bfs_levels_on, pagerank_dense, pagerank_on, sssp_dense, sssp_on,
};
use graphblas::{
    ctx, ctx_on, BackendKind, CsrMatrix, Distributed, GraphMatrix, Parallel, Plus, Sequential,
    SparseVector, Vector,
};
use proptest::prelude::*;

/// A random square graph: every vertex gets a couple of out-edges with
/// awkward fractional positive weights, plus extra random edges.
fn arb_graph(max_dim: usize) -> impl Strategy<Value = CsrMatrix<f64>> {
    (4..max_dim).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 1i64..=40), 0..(3 * n)).prop_map(move |extra| {
            let mut t: Vec<(usize, usize, f64)> = Vec::new();
            for i in 0..n {
                // Edge i→j is stored at A[j][i] (column = source).
                t.push(((i + 1) % n, i, 0.1 + i as f64 / 3.0));
                t.push(((i + 7) % n, i, 1.0 / 7.0 + (i % 5) as f64));
            }
            for (r, c, w) in extra {
                t.push((r, c, w as f64 / 7.0));
            }
            // Dedupe on position: keep the first spelling of each edge.
            t.sort_by_key(|&(r, c, _)| (r, c));
            t.dedup_by_key(|&mut (r, c, _)| (r, c));
            CsrMatrix::from_triplets(n, n, &t).unwrap()
        })
    })
}

/// A random sparse frontier with fill 0.0 and integer-ish values.
fn arb_frontier(n: usize) -> impl Strategy<Value = SparseVector<f64>> {
    proptest::collection::vec((0..n, -4i64..=4), 0..n.div_ceil(4)).prop_map(move |entries| {
        let mut e: Vec<(u32, f64)> = entries
            .into_iter()
            .map(|(i, v)| (i as u32, v as f64))
            .collect();
        e.sort_by_key(|&(i, _)| i);
        e.dedup_by_key(|&mut (i, _)| i);
        SparseVector::from_entries(n, 0.0, &e).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BFS, SSSP and PageRank on sparse frontiers return exactly the
    /// dense path's bits on all three backends.
    #[test]
    fn traversals_match_dense_on_every_backend(a in arb_graph(24), seed in 0usize..1000) {
        let n = a.nrows();
        let source = seed % n;
        let g = GraphMatrix::from_csr(a.clone());
        let sctx = ctx::<Sequential>();

        let dense_bfs = bfs_levels_dense(sctx, &a, source).unwrap();
        let dense_sssp = sssp_dense(sctx, &a, source).unwrap();
        let (dense_pr, dense_iters) = pagerank_dense(sctx, &a, 0.85, 1e-8, 30).unwrap();

        for backend in [
            BackendKind::Sequential,
            BackendKind::Parallel,
            BackendKind::Dist(Distributed::new(3)),
        ] {
            let exec = ctx_on(backend);
            let (bfs, _) = bfs_levels_on(exec, &g, source).unwrap();
            prop_assert_eq!(&bfs, &dense_bfs);
            let (sssp, _) = sssp_on(exec, &g, source).unwrap();
            for (s, d) in sssp.iter().zip(&dense_sssp) {
                prop_assert_eq!(s.to_bits(), d.to_bits());
            }
            let (pr, iters, stats) = pagerank_on(exec, &g, 0.85, 1e-8, 30).unwrap();
            prop_assert_eq!(iters, dense_iters);
            prop_assert_eq!(stats.push_steps, 0, "promoted rank vectors always pull");
            for (s, d) in pr.as_slice().iter().zip(dense_pr.as_slice()) {
                prop_assert_eq!(s.to_bits(), d.to_bits());
            }
        }
    }

    /// Masked/accumulated `mxv` over a `SparseVector` is bit-identical to
    /// the dense `mxv` on the densified frontier, whichever mode the
    /// push/pull heuristic picks.
    #[test]
    fn sparse_mxv_matches_dense_under_masks_and_accum(a in arb_graph(20), seed in 0u64..1000) {
        let n = a.nrows();
        let g = GraphMatrix::from_csr(a.clone());
        let exec = ctx::<Sequential>();
        let pexec = ctx::<Parallel>();
        proptest!(|(x in arb_frontier(n))| {
            let xd = x.to_dense();
            let mask = Vector::<bool>::from_dense(
                (0..n)
                    .map(|i| !(i as u64 * 13 + seed).is_multiple_of(3))
                    .collect(),
            );
            let y0: Vec<f64> = (0..n).map(|i| ((i as u64 * 5 + seed) % 7) as f64 - 3.0).collect();

            // Plain, masked, inverted-masked, and accumulated spellings.
            for variant in 0..4 {
                let mut want = Vector::from_dense(y0.clone());
                let mut got = Vector::from_dense(y0.clone());
                let mut got_par = Vector::from_dense(y0.clone());
                match variant {
                    0 => {
                        exec.mxv(&a, &xd).into(&mut want).unwrap();
                        exec.mxv_sparse(&g, &x).into(&mut got).unwrap();
                        pexec.mxv_sparse(&g, &x).into(&mut got_par).unwrap();
                    }
                    1 => {
                        exec.mxv(&a, &xd).mask(&mask).into(&mut want).unwrap();
                        exec.mxv_sparse(&g, &x).mask(&mask).into(&mut got).unwrap();
                        pexec.mxv_sparse(&g, &x).mask(&mask).into(&mut got_par).unwrap();
                    }
                    2 => {
                        exec.mxv(&a, &xd).mask(&mask).invert_mask().into(&mut want).unwrap();
                        exec.mxv_sparse(&g, &x).mask(&mask).invert_mask().into(&mut got).unwrap();
                        pexec.mxv_sparse(&g, &x).mask(&mask).invert_mask().into(&mut got_par).unwrap();
                    }
                    _ => {
                        exec.mxv(&a, &xd).accum(Plus).into(&mut want).unwrap();
                        exec.mxv_sparse(&g, &x).accum(Plus).into(&mut got).unwrap();
                        pexec.mxv_sparse(&g, &x).accum(Plus).into(&mut got_par).unwrap();
                    }
                }
                for (w, g_) in want.as_slice().iter().zip(got.as_slice()) {
                    prop_assert_eq!(w.to_bits(), g_.to_bits(), "variant {} diverged", variant);
                }
                for (w, g_) in want.as_slice().iter().zip(got_par.as_slice()) {
                    prop_assert_eq!(w.to_bits(), g_.to_bits(), "variant {} (par) diverged", variant);
                }
            }
        });
    }
}
