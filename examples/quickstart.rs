//! Quickstart: generate an HPCG problem, run both implementations, and
//! validate them — the five-minute tour of the library.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use graphblas::{BackendKind, DynCtx, GrbError, LinearOperator, Minus, Parallel, Vector};
use hpcg::driver::{flops_per_iteration, run_with_rhs, RunConfig};
use hpcg::{validate, GrbHpcg, Grid3, Kernels, Problem, RefHpcg, RhsVariant};

fn main() -> Result<(), GrbError> {
    // 1. Generate the benchmark problem: a 32³ grid, 4 multigrid levels,
    //    27-point stencil, rhs whose exact solution is the ones vector.
    let grid = Grid3::cube(32);
    let problem = Problem::build_with(grid, 4, RhsVariant::Reference)?;
    println!(
        "problem: {}x{}x{} grid, n = {}, nnz = {} over {} levels",
        grid.nx,
        grid.ny,
        grid.nz,
        problem.n(),
        problem.total_nnz(),
        problem.levels.len()
    );
    for l in &problem.levels {
        println!(
            "  level {:>2}: n = {:>7}, colors = {}, restriction = {}",
            format!("{}³", l.grid.nx),
            l.n(),
            l.coloring.num_colors,
            if l.has_coarse() {
                "materialized n/8 x n CSR"
            } else {
                "none (coarsest)"
            }
        );
    }

    // 2. Run 25 preconditioned CG iterations through the GraphBLAS (ALP)
    //    implementation on the parallel backend. (`GrbHpcg::with_ctx` with
    //    a `DynCtx` would select the backend at runtime instead — that is
    //    what `hpcg_report --backend seq|par` does.)
    let flops = flops_per_iteration(&problem);
    let config = RunConfig {
        iterations: 25,
        preconditioned: true,
    };
    let b = problem.b.clone();
    let mut alp = GrbHpcg::<Parallel>::new(problem.clone());
    let (report, cg) = run_with_rhs(&mut alp, &b, flops, config);
    println!(
        "\n{}: {} iterations in {:.3} s  ({:.2} GFLOP/s, residual {:.2e})",
        report.name, report.iterations, report.total_secs, report.gflops, cg.relative_residual
    );
    println!(
        "  smoother share {:.1} %, whole MG share {:.1} % (paper §V-C: >50 %, 80-90 %)",
        100.0 * report.smoother_fraction(),
        100.0 * report.mg_fraction()
    );

    // 3. Same through the reference implementation.
    let b_vec = problem.b.as_slice().to_vec();
    let mut reference = RefHpcg::new(problem.clone());
    let (report_ref, cg_ref) = run_with_rhs(&mut reference, &b_vec, flops, config);
    println!(
        "{}: {} iterations in {:.3} s  ({:.2} GFLOP/s, residual {:.2e})",
        report_ref.name,
        report_ref.iterations,
        report_ref.total_secs,
        report_ref.gflops,
        cg_ref.relative_residual
    );

    // 4. HPCG's validation suite: smoother symmetry + preconditioning gain.
    let mut alp_v = GrbHpcg::<Parallel>::new(problem.clone());
    let v = validate(&mut alp_v, &b, 200);
    println!(
        "\nvalidation: symmetry defects spmv {:.1e} / MG {:.1e}, PCG {} iters vs plain CG {} → {}",
        v.spmv_symmetry_defect,
        v.mg_symmetry_defect,
        v.pcg_iterations,
        v.plain_cg_iterations,
        if v.passed { "PASSED" } else { "FAILED" }
    );

    // 5. The execution-context API directly: for the reference rhs the
    //    exact solution is the ones vector, so A·1 must reproduce b.
    //    Verify it with fluent builders on a runtime-selected backend
    //    (set GRB_BACKEND=seq to flip it).
    let exec = DynCtx::from_env_or(BackendKind::Parallel)?;
    let a0 = &problem.levels[0].a;
    let ones = Vector::filled(problem.n(), 1.0);
    let mut a_ones = Vector::zeros(problem.n());
    exec.mxv(a0, &ones).into(&mut a_ones)?;
    let mut diff = Vector::zeros(problem.n());
    exec.ewise(&b, &a_ones).op(Minus).into(&mut diff)?;
    let defect = exec.norm2_squared(&diff)?.sqrt();
    println!(
        "\nctx check on '{}': ‖b − A·1‖ = {defect:.2e} (the reference rhs solves to ones)",
        exec.backend_name()
    );

    // 6. The §VII-A storage trade-off: materialized restriction matrix vs
    //    matrix-free injection operator.
    let l0 = &problem.levels[0];
    let (Some(restriction), Some(injection)) = (&l0.restriction, &l0.injection) else {
        return Err(GrbError::InvalidInput(
            "the fine level of a 4-level hierarchy must own a restriction".into(),
        ));
    };
    let csr_bytes = LinearOperator::<f64>::storage_bytes(restriction);
    let inj_bytes = LinearOperator::<f64>::storage_bytes(injection);
    println!(
        "\nrestriction storage: materialized CSR {} KB vs matrix-free {} KB ({}x smaller)",
        csr_bytes / 1024,
        inj_bytes / 1024,
        csr_bytes / inj_bytes.max(1)
    );
    // 7. Compile once, replay many times: record an op graph against
    //    symbolic slots, fuse it into an immutable `Plan`, then replay it
    //    with rebound vectors and a mutated scalar parameter — no
    //    re-recording, no re-fusion. This is the path the CG loop and the
    //    serve workers take on every iteration after the first.
    let n = problem.n();
    let plan = {
        let mut pb = exec.plan::<f64>();
        let am = pb.matrix(n, n); // slot: the operator
        let xs = pb.input(n); // slot: the direction vector
        let ys = pb.output(n); // slot: receives A·x
        let alpha = pb.param(0.0); // scalar mutated between replays
        let yh = pb.mxv(am, xs).into(ys);
        pb.dot(xs, yh).result(); // fuses with the mxv into one pass
        pb.axpy(ys, alpha, xs);
        pb.compile()
    };
    let mut y_out = Vector::zeros(n);
    for (run, alpha) in [(1, 0.5), (2, -1.25)] {
        let mut bnd = plan.bindings();
        bnd.bind_matrix(plan.matrix_slot(0), a0)
            .bind_input(plan.input_slot(0), &ones)
            .bind_output(plan.output_slot(0), &mut y_out)
            .set(plan.param(0), alpha);
        let xt_ax = plan.run(&mut bnd)?[plan.scalar(0)];
        println!(
            "plan replay {run}: 1ᵀA·1 = {xt_ax:.1} with α = {alpha} (schedule compiled once, {} stages)",
            plan.schedule().len()
        );
    }
    // 8. The large-graph subsystem: BFS over a Graph500-style RMAT graph
    //    on sparse frontiers. `GraphMatrix` keeps both orientations so
    //    the traversal can scatter sparse frontiers through the columns
    //    (push) and sweep dense ones through the rows (pull); the level
    //    vector is bit-identical to the dense-vector baseline either way.
    let rmat = hpcg_bench::rmat::rmat_adjacency(hpcg_bench::rmat::RmatConfig {
        scale: 10,
        edge_factor: 8,
        seed: 7,
    });
    let nv = rmat.nrows();
    let hub = (0..nv).max_by_key(|&v| rmat.row(v).0.len()).unwrap_or(0);
    let graph = graphblas::GraphMatrix::from_csr(rmat.clone());
    let (levels, stats) =
        graphblas::algorithms::bfs_levels_on(graphblas::ctx::<Parallel>(), &graph, hub)?;
    let baseline =
        graphblas::algorithms::bfs_levels_dense(graphblas::ctx::<Parallel>(), &rmat, hub)?;
    assert_eq!(
        levels, baseline,
        "sparse frontiers change nothing but the work"
    );
    let reached = levels.iter().filter(|&&l| l >= 0).count();
    println!(
        "\nRMAT BFS: 2^10 vertices, {} edges; reached {reached} from hub {hub} in {} rounds \
         ({} push, {} pull)",
        rmat.nnz() / 2,
        stats.steps(),
        stats.push_steps,
        stats.pull_steps
    );
    // 9. Observability: flip the global tracing flag on, replay the plan
    //    from step 7 under it, and export the spans as Chrome trace-event
    //    JSON. Every kernel, plan compile/run, and (on `dist`) superstep
    //    records a span; with the flag off (the default) the probe in
    //    each kernel costs one relaxed atomic load. Metrics ride along in
    //    a registry of counters and log-bucketed latency histograms.
    obs::set_enabled(true);
    {
        let mut bnd = plan.bindings();
        bnd.bind_matrix(plan.matrix_slot(0), a0)
            .bind_input(plan.input_slot(0), &ones)
            .bind_output(plan.output_slot(0), &mut y_out)
            .set(plan.param(0), 2.0);
        plan.run(&mut bnd)?;
    }
    obs::set_enabled(false);
    let trace_path = std::env::temp_dir().join("quickstart_trace.json");
    std::fs::write(&trace_path, obs::chrome_trace()).expect("trace write");
    println!(
        "\ntraced {} span(s) -> {} (open in Perfetto or chrome://tracing; \
         try `hpcg_report --trace out.json` for a full solve)",
        obs::span_count(),
        trace_path.display()
    );
    let hist = obs::global().histogram("quickstart.demo_ns");
    hist.record(1_250);
    hist.record(975);
    println!(
        "metrics registry: {} sample(s), p50 {} ns -> {}",
        hist.count(),
        hist.percentile(50.0),
        obs::global().dump_json()
    );
    // 10. Sharded distributed execution: the same solver on a simulated
    //     4-node BSP cluster whose kernels really execute across 4 worker
    //     threads over sharded containers, split-phase exchanges
    //     overlapping local compute. Results stay bit-identical to
    //     `Sequential`; what the cluster hands back afterwards is the
    //     modeled-vs-measured cross-check and the overlap win — the same
    //     columns `hpcg_report --backend dist:4` and `scaling_report`
    //     print at full size.
    let small = Problem::build_with(Grid3::cube(8), 2, RhsVariant::Reference)?;
    let small_flops = flops_per_iteration(&small);
    let small_config = RunConfig {
        iterations: 5,
        preconditioned: true,
    };
    let sb = small.b.clone();
    let mut seq = GrbHpcg::<graphblas::Sequential>::new(small.clone());
    let (_, cg_seq) = run_with_rhs(&mut seq, &sb, small_flops, small_config);
    let cluster = graphblas::Distributed::new(4);
    let mut dist = GrbHpcg::with_ctx(small, cluster.ctx());
    let (_, cg_dist) = run_with_rhs(&mut dist, &sb, small_flops, small_config);
    assert_eq!(
        cg_seq.relative_residual.to_bits(),
        cg_dist.relative_residual.to_bits(),
        "sharded execution changes the schedule, never the bits"
    );
    let summary = cluster.cost_summary();
    println!(
        "\ndist:4 HPCG (8³, {} iters): modeled {:.3} ms vs measured {:.3} ms \
         (x{:.2} model error), {:.3} ms exchange hidden behind compute over {} supersteps",
        cg_dist.iterations,
        summary.total_secs * 1e3,
        summary.total_measured_secs * 1e3,
        summary.model_error(),
        summary.total_overlap_hidden_secs * 1e3,
        summary.supersteps,
    );
    print!("{summary}");
    let _ = alp.timers();
    Ok(())
}
