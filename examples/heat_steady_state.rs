//! Steady-state heat conduction — the physical problem behind HPCG
//! (paper §II-A): a 3D body with an internal heat source, solved with the
//! MG-preconditioned CG solver, then inspected as a temperature field.
//!
//! We place a hot region in the center of the domain (a localized source
//! term in `b`), solve `A·x = b`, and print the temperature profile along
//! the central axis: it should peak at the source and decay toward the
//! cooled boundary — the qualitative physics the stencil encodes.
//!
//! ```text
//! cargo run --release --example heat_steady_state
//! ```

use graphblas::{GrbError, Parallel, Vector};
use hpcg::cg::{cg_solve, CgWorkspace};
use hpcg::mg::MgWorkspace;
use hpcg::{GrbHpcg, Grid3, Kernels, Problem, RhsVariant};

fn main() -> Result<(), GrbError> {
    let n_side = 32;
    let grid = Grid3::cube(n_side);
    let problem = Problem::build_with(grid, 4, RhsVariant::Ones)?;

    // A localized heat source: power injected in a 4³ region at the center.
    let mut source = vec![0.0f64; grid.len()];
    let c = n_side / 2;
    for z in c - 2..c + 2 {
        for y in c - 2..c + 2 {
            for x in c - 2..c + 2 {
                source[grid.index(x, y, z)] = 100.0;
            }
        }
    }
    let b = Vector::from_dense(source);

    let mut solver = GrbHpcg::<Parallel>::new(problem);
    let mut cg_ws = CgWorkspace::new(&solver);
    let mut mg_ws = MgWorkspace::new(&solver);
    let mut temperature = solver.alloc(0);
    let result = cg_solve(
        &mut solver,
        &mut cg_ws,
        &mut mg_ws,
        &b,
        &mut temperature,
        100,
        1e-9,
        true,
    );
    println!(
        "solved steady-state heat on a {n_side}³ grid in {} CG iterations (relative residual {:.2e})",
        result.iterations, result.relative_residual
    );

    // Temperature along the central x-axis.
    println!("\ntemperature profile along the central axis (source at the middle):");
    let t = temperature.as_slice();
    let max_t = t.iter().cloned().fold(0.0f64, f64::max);
    for x in 0..n_side {
        let v = t[grid.index(x, c, c)];
        let bar = "#".repeat(((v / max_t) * 50.0).round() as usize);
        if x % 2 == 0 {
            println!("  x={x:>2}  {v:>8.3}  {bar}");
        }
    }

    // Physics sanity: peak at the source, decaying monotonically outwards.
    let center_t = t[grid.index(c, c, c)];
    let edge_t = t[grid.index(1, c, c)];
    println!("\ncenter temperature {center_t:.3} vs near-boundary {edge_t:.3}");
    assert!(
        center_t > 10.0 * edge_t.abs().max(1e-12),
        "heat must concentrate at the source"
    );

    // Energy balance: the stencil row sums are nonnegative (dissipative),
    // so the solution stays nonnegative for a nonnegative source.
    let min_t = t.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("minimum temperature {min_t:.2e} (≥ ~0 for a dissipative operator)");
    Ok(())
}
