//! PageRank on the GraphBLAS substrate — the library is a general
//! GraphBLAS, not an HPCG-only kernel pack (paper §II-H: "multiple
//! applications on sparse data ... with a small set of primitives").
//!
//! Builds a small web-graph with two hub pages, runs power iteration
//! entirely through `mxv`/`waxpby`/`reduce`, and prints the ranking: the
//! hubs must come out on top.
//!
//! ```text
//! cargo run --release --example pagerank
//! GRB_BACKEND=dist:4 cargo run --release --example pagerank   # distributed
//! ```
//!
//! In distributed mode (`GRB_BACKEND=dist:<nodes>` or `--dist <nodes>`)
//! the identical iteration runs on the simulated BSP cluster and the
//! example prints the per-kernel modeled cost report: every `mxv` paid a
//! full allgather of the rank vector, every reduction an allreduce.

use graphblas::{BackendKind, CsrMatrix, DynCtx, GrbError, Max, Vector};

fn main() -> Result<(), GrbError> {
    // Runtime backend selection: `GRB_BACKEND=seq cargo run --example
    // pagerank` flips the whole power iteration to the sequential backend,
    // `GRB_BACKEND=dist:4` (or `--dist 4`) to the simulated cluster.
    let mut args = std::env::args().skip_while(|a| a != "--dist");
    let exec = match (args.next(), args.next()) {
        (Some(_), value) => {
            // Reuse the validated backend-spec parser: same diagnostics as
            // `GRB_BACKEND=dist:<n>` for the same input space.
            let spec = format!("dist:{}", value.as_deref().unwrap_or(""));
            DynCtx::runtime(BackendKind::parse(&spec)?)
        }
        (None, _) => DynCtx::from_env_or(BackendKind::Parallel)?,
    };
    println!(
        "backend: {}, {} thread(s)/node(s)",
        exec.backend_name(),
        exec.threads()
    );

    // A directed graph: 2 hubs (0, 1) that everyone links to, hubs link to
    // each other and to a few spokes, spokes link in a ring.
    let n = 12usize;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for page in 2..n {
        edges.push((page, 0));
        edges.push((page, 1));
        edges.push((page, 2 + (page - 1) % (n - 2))); // ring among spokes
    }
    edges.push((0, 1));
    edges.push((1, 0));
    edges.push((0, 2));
    edges.push((1, 3));

    // Column-stochastic transition matrix M[j,i] = 1/outdeg(i) for edge i→j.
    let mut outdeg = vec![0usize; n];
    for &(src, _) in &edges {
        outdeg[src] += 1;
    }
    let triplets: Vec<(usize, usize, f64)> = edges
        .iter()
        .map(|&(src, dst)| (dst, src, 1.0 / outdeg[src] as f64))
        .collect();
    let m = CsrMatrix::from_triplets(n, n, &triplets)?;

    // Power iteration: r ← d·M·r + (1−d)/n, until the rank vector settles.
    let damping = 0.85;
    let teleport = Vector::filled(n, (1.0 - damping) / n as f64);
    let mut rank = Vector::filled(n, 1.0 / n as f64);
    let mut next = Vector::zeros(n);
    let mut iterations = 0;
    loop {
        exec.mxv(&m, &rank).into(&mut next)?;
        // next ← d·next + 1·teleport
        let scaled = next.clone();
        exec.ewise(&scaled, &teleport)
            .scaled(damping, 1.0)
            .into(&mut next)?;
        // Convergence: max |next - rank|.
        let diff: f64 = next
            .as_slice()
            .iter()
            .zip(rank.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        std::mem::swap(&mut rank, &mut next);
        iterations += 1;
        if diff < 1e-12 || iterations > 200 {
            break;
        }
    }

    let total = exec.dot(&rank, &Vector::filled(n, 1.0)).compute()?;
    println!("pagerank converged in {iterations} iterations (mass {total:.6})");

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| rank.as_slice()[b].total_cmp(&rank.as_slice()[a]));
    println!("\nranking:");
    for (place, &page) in order.iter().enumerate().take(6) {
        let label = match page {
            0 | 1 => "hub",
            _ => "spoke",
        };
        println!(
            "  #{:<2} page {:>2} ({label:>5})  rank {:.4}",
            place + 1,
            page,
            rank.as_slice()[page]
        );
    }

    assert!(
        order[0] <= 1 && order[1] <= 1,
        "the two hubs must rank first"
    );
    let top = exec.reduce(&rank).monoid(Max).compute()?;
    assert!((top - rank.as_slice()[order[0]]).abs() < 1e-15);
    println!("\nhubs rank first — GraphBLAS primitives compose beyond HPCG.");

    if let BackendKind::Dist(cluster) = exec.kind() {
        // The same text just ran distributed; show what it would have cost.
        println!();
        print!("{}", cluster.cost_summary());
        println!(
            "every mxv allgathered the full rank vector (opaque containers, Table I's n(p-1)/p)."
        );
    }
    Ok(())
}
