//! Distributed HPCG on the simulated cluster — the paper's §V-B
//! experiment in miniature.
//!
//! Runs both distributed designs (ALP's 1D block-cyclic allgather vs the
//! reference's 3D geometric halo exchange) on a weak-scaling sweep of the
//! simulated ARM cluster and prints execution time, communication volume
//! and superstep counts side by side.
//!
//! ```text
//! cargo run --release --example distributed_cluster
//! ```

use bsp::machine::MachineParams;
use graphblas::GrbError;
use hpcg::distributed::{run_distributed, AlpDistHpcg, RefDistHpcg};
use hpcg::{Grid3, Problem, RhsVariant};

fn main() -> Result<(), GrbError> {
    let machine = MachineParams::arm_cluster();
    let iterations = 5;
    let local = 16; // 16³ points per node

    println!(
        "simulated ARM cluster: g = {:.2} ns/byte, l = {:.1} µs, {} CG iterations",
        machine.g_secs_per_byte * 1e9,
        machine.l_secs * 1e6,
        iterations
    );
    println!("weak scaling with {local}³ points per node\n");
    println!(
        "{:>5}  {:>9}  {:>12} {:>12}  {:>10} {:>10}  {:>6} {:>6}",
        "nodes", "n", "Ref time", "ALP time", "Ref comm", "ALP comm", "Ref ss", "ALP ss"
    );

    for nodes in [2usize, 4, 8] {
        // Grow the grid along the axes the 3D factorization splits.
        let (px, py, pz) = bsp::factor3d(nodes, local * nodes, local * nodes, local * nodes);
        let grid = Grid3::new(local * px, local * py, local * pz);
        let problem = Problem::build_with(grid, 4, RhsVariant::Reference)?;

        let b_grb = problem.b.clone();
        let mut alp = AlpDistHpcg::new(problem.clone(), nodes, machine);
        let (ra, cga) = run_distributed(&mut alp, &b_grb, iterations);

        let b_vec = problem.b.as_slice().to_vec();
        let mut rd = RefDistHpcg::new(problem, nodes, machine);
        let (rr, cgr) = run_distributed(&mut rd, &b_vec, iterations);

        assert!(
            (cga.relative_residual - cgr.relative_residual).abs()
                < 1e-9 * cgr.relative_residual.max(1e-12),
            "both designs compute the same numerics"
        );

        println!(
            "{:>5}  {:>9}  {:>10.3}ms {:>10.3}ms  {:>8.2}MB {:>8.2}MB  {:>6} {:>6}",
            nodes,
            ra.n,
            rr.modeled_secs * 1e3,
            ra.modeled_secs * 1e3,
            rr.comm_bytes / 1e6,
            ra.comm_bytes / 1e6,
            rr.supersteps,
            ra.supersteps,
        );
    }

    println!("\nRef stays flat while ALP grows with the node count — the Table I");
    println!("asymptotics (halo ∛(n²/p²) vs allgather n(p−1)/p) made visible.");
    println!(
        "Run `cargo run --release -p hpcg-bench --bin fig3_weak_scaling` for the full figure."
    );
    Ok(())
}
