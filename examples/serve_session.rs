//! A guided session against the solve service — the `serve` crate's
//! in-process API end to end: register a matrix, run the same jobs on
//! three backends, watch the per-tenant bill grow, and see admission
//! control reject work when the queue is full.
//!
//! ```text
//! cargo run --release --example serve_session
//! ```
//!
//! For the wire protocol over a Unix socket, run the daemon instead
//! (`cargo run --release -p serve --bin grb_serve`) and talk to it with
//! `serve::net::Client`.

use serve::protocol::{BackendSpec, JobSpec, Payload, Request};
use serve::{ServeError, Server, ServerConfig};

fn main() -> serve::Result<()> {
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_bound: 8,
    });

    // 1. Register a small directed graph under the name "web": a ring
    //    with chords, the kind of matrix every later job refers to by
    //    name instead of re-uploading.
    let n = 64;
    let mut triplets = Vec::new();
    for i in 0..n {
        triplets.push((i, (i + 1) % n, 1.0));
        triplets.push((i, (i + 7) % n, 0.5 + i as f64 / 9.0));
    }
    server.call(Request {
        tenant: "acme".into(),
        backend: BackendSpec::Seq,
        job: JobSpec::Put {
            name: "web".into(),
            nrows: n,
            ncols: n,
            triplets,
        },
    })?;

    // 2. The same BFS on three backends — one `Exec` surface, so the
    //    request just names where to run. Levels are bit-identical.
    let mut levels = Vec::new();
    for backend in [BackendSpec::Seq, BackendSpec::Par, BackendSpec::Dist(4)] {
        let (payload, meter) = server.call(Request {
            tenant: "acme".into(),
            backend,
            job: JobSpec::Bfs {
                matrix: "web".into(),
                source: 0,
            },
        })?;
        let Payload::Levels(l) = payload else {
            return Err(ServeError::BadRequest("bfs returns levels".into()));
        };
        println!(
            "bfs on {backend:<7}  depth {}  | acme so far: {} jobs, {:.3e} modeled secs, {:.0} h-bytes",
            l.iter().max().copied().unwrap_or(0),
            meter.jobs,
            meter.modeled_secs,
            meter.h_bytes,
        );
        levels.push(l);
    }
    assert!(levels.windows(2).all(|w| w[0] == w[1]), "backends agree");

    // 3. A second tenant's dot products bill to its own meter — the
    //    scope-tagged BSP cost model is the billing currency, so the
    //    distributed run is the only one with h-relation traffic.
    let x: Vec<f64> = (0..n).map(|i| i as f64 / 3.0).collect();
    let (dot, meter) = server.call(Request {
        tenant: "zeta".into(),
        backend: BackendSpec::Dist(4),
        job: JobSpec::Dot { x: x.clone(), y: x },
    })?;
    println!(
        "zeta dot on dist:4 = {dot:?}  | zeta bill: {} job, {:.0} h-bytes",
        meter.jobs, meter.h_bytes
    );

    // 4. Admission control: with no workers draining, the bounded queue
    //    fills and the next submit gets a *typed* rejection — the client
    //    owns the retry policy, the server never grows unboundedly.
    let idle = Server::start(ServerConfig {
        workers: 0,
        queue_bound: 2,
    });
    for _ in 0..2 {
        let _ticket = idle.submit(Request {
            tenant: "acme".into(),
            backend: BackendSpec::Seq,
            job: JobSpec::Dot {
                x: vec![1.0],
                y: vec![1.0],
            },
        })?;
    }
    match idle.submit(Request {
        tenant: "acme".into(),
        backend: BackendSpec::Seq,
        job: JobSpec::Dot {
            x: vec![1.0],
            y: vec![1.0],
        },
    }) {
        Err(ServeError::Overloaded { bound }) => {
            println!("third job rejected: queue full at bound {bound} (typed backpressure)")
        }
        other => {
            drop(other);
            return Err(ServeError::BadRequest(
                "a full queue must reject with Overloaded".into(),
            ));
        }
    }
    idle.shutdown();

    // 5. The final per-tenant statement, straight from the metering ledger.
    println!("\nper-tenant totals:");
    for tenant in server.metering().tenants() {
        if let Some(s) = server.metering().summary(&tenant) {
            println!(
                "  {tenant:<6} {:.3e} modeled secs, {:.0} h-bytes over {} superstep(s)",
                s.total_secs, s.total_h_bytes, s.supersteps
            );
        }
    }
    server.shutdown();
    Ok(())
}
