//! Umbrella crate re-exporting the workspace's public API.
pub use bsp;
pub use graphblas;
pub use hpcg;
pub use serve;
